"""Campaign task and record types.

Everything in this module crosses a process boundary: a
:class:`CampaignTask` travels parent→worker, and a
:class:`CampaignResult` / :class:`CampaignFailure` travels back. All of
them are plain dataclasses over JSON-ish values plus the (picklable)
options/schedule dataclasses, so pickling never drags a live simulator,
lambda, or open handle across the spawn boundary.

The merged :class:`CampaignReport` is assembled by the parent in **task
order** — never completion order — so its deterministic image (and the
fingerprint derived from it) is a pure function of the task list and the
pinned hash seed, independent of worker count and scheduling.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from ..chaos.engine import HOST_STAT_KEYS
from ..obs import merge_obs_snapshots

__all__ = [
    "CampaignTask",
    "CampaignResult",
    "CampaignFailure",
    "CampaignReport",
]


@dataclass(frozen=True)
class CampaignTask:
    """One scenario to execute in a worker.

    ``runner`` names either a builtin kind (``"chaos"``,
    ``"pbft_chaos"``) or a ``"module:callable"`` import path resolved in
    the worker (see :mod:`repro.parallel.runners`). ``options`` and the
    optional ``schedule`` are handed to the runner verbatim; both must be
    picklable.
    """

    task_id: str
    runner: str
    options: Any = None
    schedule: Any = None

    def __post_init__(self) -> None:
        if not self.task_id:
            raise ValueError("task_id must be non-empty")
        if not self.runner:
            raise ValueError("runner must be non-empty")


@dataclass
class CampaignResult:
    """Outcome of one successfully executed task.

    ``wall_s``, ``worker_id`` and ``attempts`` are host/scheduling facts
    and live outside the deterministic image, mirroring the
    ``HOST_STAT_KEYS`` convention on :class:`~repro.chaos.ChaosResult`.
    """

    task_id: str
    runner: str
    ok: bool
    violations: List[Dict[str, Any]] = field(default_factory=list)
    fingerprint: str = ""
    stats: Dict[str, Any] = field(default_factory=dict)
    obs_snapshot: Optional[Dict[str, Any]] = None
    payload: Optional[Dict[str, Any]] = None
    wall_s: float = 0.0
    worker_id: int = -1
    attempts: int = 1

    @property
    def deterministic_stats(self) -> Dict[str, Any]:
        return {
            key: value
            for key, value in self.stats.items()
            if key not in HOST_STAT_KEYS
        }

    def to_dict(self, deterministic_only: bool = False) -> Dict[str, Any]:
        image: Dict[str, Any] = {
            "record": "result",
            "task_id": self.task_id,
            "runner": self.runner,
            "ok": self.ok,
            "violations": self.violations,
            "fingerprint": self.fingerprint,
            "stats": self.deterministic_stats,
            "obs_snapshot": self.obs_snapshot,
            "payload": self.payload,
        }
        if not deterministic_only:
            image["stats"] = dict(self.stats)
            image["wall_s"] = self.wall_s
            image["worker_id"] = self.worker_id
            image["attempts"] = self.attempts
        return image


@dataclass
class CampaignFailure:
    """A task that could not produce a result.

    ``kind`` is one of ``"exception"`` (the runner raised — the
    traceback is captured in-worker), ``"crash"`` (the worker process
    died, e.g. a hard crash or ``os._exit``), or ``"timeout"`` (the task
    exceeded its deadline; the worker got a ``faulthandler`` dump request
    before being terminated). The owning ``seed`` is extracted from the
    task options when present so sweep reports can name the scenario
    without reparsing options.
    """

    task_id: str
    runner: str
    kind: str
    error: str = ""
    traceback: str = ""
    seed: Optional[int] = None
    wall_s: float = 0.0
    worker_id: int = -1
    attempts: int = 1

    ok = False
    fingerprint = ""
    violations: List[Dict[str, Any]] = ()
    obs_snapshot = None

    def to_dict(self, deterministic_only: bool = False) -> Dict[str, Any]:
        image: Dict[str, Any] = {
            "record": "failure",
            "task_id": self.task_id,
            "runner": self.runner,
            "kind": self.kind,
            "error": self.error,
            "seed": self.seed,
        }
        if not deterministic_only:
            image["traceback"] = self.traceback
            image["wall_s"] = self.wall_s
            image["worker_id"] = self.worker_id
            image["attempts"] = self.attempts
        return image


CampaignRecord = Union[CampaignResult, CampaignFailure]


@dataclass
class CampaignReport:
    """Merged outcome of a whole campaign, in task order."""

    records: List[CampaignRecord]
    workers: int
    hash_seed: str
    wall_s: float = 0.0

    @property
    def results(self) -> List[CampaignResult]:
        return [r for r in self.records if isinstance(r, CampaignResult)]

    @property
    def failures(self) -> List[CampaignFailure]:
        return [r for r in self.records if isinstance(r, CampaignFailure)]

    @property
    def ok(self) -> bool:
        return all(record.ok for record in self.records)

    @property
    def violation_counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for result in self.results:
            for violation in result.violations:
                key = f"{violation['monitor']}/{violation['kind']}"
                counts[key] = counts.get(key, 0) + 1
        return dict(sorted(counts.items()))

    def merged_obs(self) -> Dict[str, Any]:
        """Task-ordered merge of every per-task obs snapshot."""
        return merge_obs_snapshots([
            (result.task_id, result.obs_snapshot)
            for result in self.results
            if result.obs_snapshot is not None
        ])

    def to_dict(self, deterministic_only: bool = False) -> Dict[str, Any]:
        image: Dict[str, Any] = {
            "tasks": len(self.records),
            "hash_seed": self.hash_seed,
            "ok": self.ok,
            "violations": self.violation_counts,
            "records": [
                record.to_dict(deterministic_only) for record in self.records
            ],
            "obs": self.merged_obs(),
        }
        if not deterministic_only:
            image["workers"] = self.workers
            image["wall_s"] = self.wall_s
        return image

    @property
    def fingerprint(self) -> str:
        """Digest of the deterministic image — worker-count independent."""
        canonical = json.dumps(
            self.to_dict(deterministic_only=True), sort_keys=True
        )
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    def wall_percentiles_ms(self) -> Dict[str, float]:
        """p50/p99 per-scenario wall cost across successful results."""
        walls = sorted(result.wall_s * 1000.0 for result in self.results)
        if not walls:
            return {"p50": 0.0, "p99": 0.0}

        def pct(fraction: float) -> float:
            index = min(len(walls) - 1, int(fraction * (len(walls) - 1) + 0.5))
            return round(walls[index], 3)

        return {"p50": pct(0.50), "p99": pct(0.99)}
