"""Runner resolution and result normalization.

A *runner* executes one :class:`~repro.parallel.task.CampaignTask`
inside a worker process and returns something the pool can normalize
into a :class:`~repro.parallel.task.CampaignResult`. Builtin kinds cover
the two chaos harnesses; anything else is a ``"module:callable"`` import
path resolved in the worker (spawned children inherit ``sys.path``, so
paths registered by the parent — e.g. pytest's rootdir inserts — resolve
there too).

A runner callable takes ``(options, schedule)`` and may return:

* a result object exposing ``ok`` / ``violations`` / ``fingerprint`` /
  ``stats`` (optionally ``deterministic_stats`` / ``obs_snapshot``) —
  the two chaos result types already match this shape, or
* a plain dict, which is stored verbatim as the result ``payload`` with
  ``ok``/``fingerprint``/``stats``/``violations``/``obs_snapshot`` keys
  lifted out when present.
"""

from __future__ import annotations

import importlib
from typing import Any, Callable, Dict, Optional, Tuple

__all__ = ["BUILTIN_RUNNERS", "resolve_runner", "normalize_outcome"]


def _run_chaos(options: Any, schedule: Any) -> Any:
    from ..chaos.engine import ChaosEngine, ChaosOptions

    return ChaosEngine(options or ChaosOptions(), schedule).run()


def _run_pbft_chaos(options: Any, schedule: Any) -> Any:
    from ..chaos.pbft import run_pbft_chaos

    return run_pbft_chaos(options, schedule)


#: builtin campaign kinds; values are zero-import-cost factories so the
#: parent can validate a kind without paying for deployment imports.
BUILTIN_RUNNERS: Dict[str, Callable[[Any, Any], Any]] = {
    "chaos": _run_chaos,
    "pbft_chaos": _run_pbft_chaos,
}


def resolve_runner(kind: str) -> Callable[[Any, Any], Any]:
    """Resolve a runner kind to a callable.

    Builtin names win; otherwise ``kind`` must be a ``"module:callable"``
    path importable in the executing process.
    """
    builtin = BUILTIN_RUNNERS.get(kind)
    if builtin is not None:
        return builtin
    if ":" not in kind:
        raise ValueError(
            f"unknown runner kind {kind!r} (builtins: "
            f"{sorted(BUILTIN_RUNNERS)}; custom runners use 'module:callable')"
        )
    module_name, _, attr = kind.partition(":")
    module = importlib.import_module(module_name)
    try:
        fn = getattr(module, attr)
    except AttributeError as exc:
        raise ValueError(
            f"runner {kind!r}: module {module_name!r} has no "
            f"attribute {attr!r}"
        ) from exc
    if not callable(fn):
        raise ValueError(f"runner {kind!r} is not callable")
    return fn


def normalize_outcome(
    outcome: Any,
) -> Tuple[bool, list, str, Dict[str, Any], Optional[Dict[str, Any]],
           Optional[Dict[str, Any]]]:
    """Flatten a runner's return value into CampaignResult fields.

    Returns ``(ok, violations, fingerprint, stats, obs_snapshot,
    payload)`` with violations rendered to dicts.
    """
    if isinstance(outcome, dict):
        payload = dict(outcome)
        ok = bool(payload.pop("ok", True))
        violations = payload.pop("violations", [])
        fingerprint = str(payload.pop("fingerprint", ""))
        stats = payload.pop("stats", {})
        obs_snapshot = payload.pop("obs_snapshot", None)
        return ok, list(violations), fingerprint, dict(stats), obs_snapshot, \
            payload or None

    violations = [
        violation.to_dict() if hasattr(violation, "to_dict") else violation
        for violation in getattr(outcome, "violations", [])
    ]
    stats = dict(getattr(outcome, "stats", {}) or {})
    return (
        bool(getattr(outcome, "ok", True)),
        violations,
        str(getattr(outcome, "fingerprint", "") or ""),
        stats,
        getattr(outcome, "obs_snapshot", None),
        None,
    )
