"""``repro.parallel`` — the multiprocess campaign runner.

Chaos sweeps and benchmark matrices are embarrassingly parallel: every
scenario is a pure function of ``(options, schedule)`` on its own
deployment. This package fans :class:`CampaignTask` lists across a
spawn-based worker pool and merges the picklable outcomes into one
:class:`CampaignReport` whose deterministic image — violations, stats,
fingerprints, merged obs snapshots — is byte-identical at any worker
count (see :mod:`repro.parallel.runner` for the hash-seed pinning that
makes this true).

Quickstart::

    from repro.chaos import ChaosOptions
    from repro.parallel import run_campaign, seed_tasks

    tasks = seed_tasks("chaos", ChaosOptions(), seeds=range(200))
    report = run_campaign(tasks, workers=4)
    assert report.ok, report.violation_counts
"""

from .runner import (
    MAX_ATTEMPTS,
    canonical_hash_seed,
    parent_is_pinned,
    resolve_workers,
    run_campaign,
    seed_tasks,
)
from .runners import BUILTIN_RUNNERS, normalize_outcome, resolve_runner
from .task import CampaignFailure, CampaignReport, CampaignResult, CampaignTask

__all__ = [
    "CampaignTask",
    "CampaignResult",
    "CampaignFailure",
    "CampaignReport",
    "run_campaign",
    "seed_tasks",
    "resolve_workers",
    "canonical_hash_seed",
    "parent_is_pinned",
    "BUILTIN_RUNNERS",
    "resolve_runner",
    "normalize_outcome",
    "MAX_ATTEMPTS",
]
