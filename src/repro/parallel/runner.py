"""The multiprocess campaign pool.

:func:`run_campaign` fans a task list across ``workers`` processes
created with the ``spawn`` start method — each worker is a fresh
interpreter that imports :mod:`repro` from scratch, constructs a fresh
deployment per task, and shares no module state with the parent. Results
stream back over per-worker queues and are merged **in task order**, so
the report (and its fingerprint) is identical no matter how the OS
schedules workers.

Determinism and the hash seed
-----------------------------
Chaos fingerprints depend on the interpreter's string-hash seed (dict
iteration order feeds the trace), so the pool pins every worker to one
canonical ``PYTHONHASHSEED``: the parent's value when the parent was
launched pinned (``PYTHONHASHSEED`` set and not ``random``), else
``"0"``. The environment variable is set around ``Process.start()`` —
spawned children read it at interpreter startup — and restored
immediately after. ``workers=1`` therefore runs in-process only when the
parent itself is pinned; an unpinned parent routes even serial campaigns
through one spawned worker so the merged report is a pure function of
``(tasks, hash_seed)`` at *any* worker count.

Failure story
-------------
A runner that raises reports a structured
:class:`~repro.parallel.task.CampaignFailure` (kind ``"exception"``)
with the in-worker traceback. A worker that dies (hard crash) or blows
its per-task deadline never hangs the pool: the parent terminates it,
re-dispatches the task once to a fresh worker, and only then reports a
``"crash"`` / ``"timeout"`` failure. Timed-out workers get a
``faulthandler`` traceback dump on stderr before termination (armed via
``faulthandler.dump_traceback_later`` inside the worker).
"""

from __future__ import annotations

import dataclasses
import faulthandler
import multiprocessing as mp
import os
import pickle
import queue as queue_mod
import time
import traceback
from collections import deque
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence

from .runners import BUILTIN_RUNNERS, normalize_outcome, resolve_runner
from .task import CampaignFailure, CampaignReport, CampaignResult, CampaignTask

__all__ = [
    "run_campaign",
    "seed_tasks",
    "resolve_workers",
    "canonical_hash_seed",
    "parent_is_pinned",
]

#: total attempts per task before a crash/timeout becomes a failure record
MAX_ATTEMPTS = 2

#: how long the parent waits on a result queue before checking liveness
_POLL_S = 0.05

#: grace period for worker shutdown before escalating to terminate()
_JOIN_S = 5.0


def canonical_hash_seed() -> str:
    """The hash seed every worker is pinned to.

    The parent's own ``PYTHONHASHSEED`` wins when it was launched pinned
    (set, and not ``"random"``); otherwise ``"0"``.
    """
    env = os.environ.get("PYTHONHASHSEED")
    if env and env != "random":
        return env
    return "0"


def parent_is_pinned() -> bool:
    """True when this process was launched with a deterministic hash seed."""
    env = os.environ.get("PYTHONHASHSEED")
    return bool(env) and env != "random"


def resolve_workers(default: int = 1, env: str = "CHAOS_WORKERS") -> int:
    """Worker count from the environment knob, else ``default``."""
    raw = os.environ.get(env, "").strip()
    if not raw:
        return default
    try:
        value = int(raw)
    except ValueError:
        raise ValueError(f"{env} must be an integer, got {raw!r}") from None
    if value < 1:
        raise ValueError(f"{env} must be >= 1, got {value}")
    return value


def seed_tasks(
    runner: str,
    options: Any,
    seeds: Iterable[int],
    schedule: Any = None,
    id_prefix: Optional[str] = None,
) -> List[CampaignTask]:
    """One task per seed, via ``dataclasses.replace(options, seed=seed)``.

    This is the shared shape of every sweep in the repo — the prefix
    defaults to the runner kind, giving task ids like ``chaos/seed-17``.
    """
    prefix = id_prefix if id_prefix is not None else runner
    return [
        CampaignTask(
            task_id=f"{prefix}/seed-{seed}",
            runner=runner,
            options=dataclasses.replace(options, seed=seed),
            schedule=schedule,
        )
        for seed in seeds
    ]


def _execute(task: CampaignTask, worker_id: int, attempts: int) -> Any:
    """Run one task to a record. Shared by workers and the in-process path."""
    start = time.perf_counter()
    try:
        fn = resolve_runner(task.runner)
        outcome = fn(task.options, task.schedule)
        ok, violations, fingerprint, stats, obs_snapshot, payload = (
            normalize_outcome(outcome)
        )
        return CampaignResult(
            task_id=task.task_id,
            runner=task.runner,
            ok=ok,
            violations=violations,
            fingerprint=fingerprint,
            stats=stats,
            obs_snapshot=obs_snapshot,
            payload=payload,
            wall_s=round(time.perf_counter() - start, 4),
            worker_id=worker_id,
            attempts=attempts,
        )
    except Exception as exc:
        return CampaignFailure(
            task_id=task.task_id,
            runner=task.runner,
            kind="exception",
            error=repr(exc),
            traceback=traceback.format_exc(),
            seed=getattr(task.options, "seed", None),
            wall_s=round(time.perf_counter() - start, 4),
            worker_id=worker_id,
            attempts=attempts,
        )


def _worker_main(
    worker_id: int,
    task_q: Any,
    result_q: Any,
    task_timeout_s: Optional[float],
) -> None:
    """Worker loop: fresh interpreter, one record per task frame."""
    faulthandler.enable()
    while True:
        frame = task_q.get()
        if frame is None:
            break
        index, attempts, task = frame
        if task_timeout_s:
            # Dump all thread stacks to stderr if the task overruns its
            # deadline — the parent will terminate us shortly after.
            faulthandler.dump_traceback_later(task_timeout_s, exit=False)
        try:
            record = _execute(task, worker_id, attempts)
        finally:
            if task_timeout_s:
                faulthandler.cancel_dump_traceback_later()
        try:
            # Pre-pickle in-worker so an unpicklable payload becomes a
            # structured failure instead of a queue feeder crash.
            blob = pickle.dumps((index, record))
        except Exception as exc:
            record = CampaignFailure(
                task_id=task.task_id,
                runner=task.runner,
                kind="exception",
                error=f"result not picklable: {exc!r}",
                seed=getattr(task.options, "seed", None),
                worker_id=worker_id,
                attempts=attempts,
            )
            blob = pickle.dumps((index, record))
        result_q.put(blob)


class _Worker:
    """Parent-side handle for one worker process."""

    def __init__(self, ctx: Any, worker_id: int, hash_seed: str,
                 task_timeout_s: Optional[float]) -> None:
        self.id = worker_id
        self.task_q = ctx.Queue()
        self.result_q = ctx.Queue()
        self.proc = ctx.Process(
            target=_worker_main,
            args=(worker_id, self.task_q, self.result_q, task_timeout_s),
            daemon=True,
        )
        # The spawned interpreter reads PYTHONHASHSEED at startup; pin it
        # for the fork window only, then restore the parent's view.
        previous = os.environ.get("PYTHONHASHSEED")
        os.environ["PYTHONHASHSEED"] = hash_seed
        try:
            self.proc.start()
        finally:
            if previous is None:
                os.environ.pop("PYTHONHASHSEED", None)
            else:
                os.environ["PYTHONHASHSEED"] = previous
        #: (index, attempts, task, deadline) of the in-flight frame
        self.current: Optional[tuple] = None

    def dispatch(self, index: int, attempts: int, task: CampaignTask,
                 task_timeout_s: Optional[float]) -> None:
        deadline = (
            time.monotonic() + task_timeout_s if task_timeout_s else None
        )
        self.current = (index, attempts, task, deadline)
        self.task_q.put((index, attempts, task))

    def discard(self) -> None:
        """Terminate and drop the process and its queues."""
        if self.proc.is_alive():
            self.proc.terminate()
        self.proc.join(timeout=_JOIN_S)
        for q in (self.task_q, self.result_q):
            q.close()
            q.cancel_join_thread()

    def shutdown(self) -> None:
        try:
            self.task_q.put(None)
        except Exception:
            pass
        self.proc.join(timeout=_JOIN_S)
        if self.proc.is_alive():
            self.proc.terminate()
            self.proc.join(timeout=_JOIN_S)
        for q in (self.task_q, self.result_q):
            q.close()
            q.cancel_join_thread()


def _run_serial(
    tasks: Sequence[CampaignTask],
    on_record: Optional[Callable[[int, Any], None]],
) -> List[Any]:
    records: List[Any] = []
    for index, task in enumerate(tasks):
        record = _execute(task, worker_id=0, attempts=1)
        records.append(record)
        if on_record is not None:
            on_record(index, record)
    return records


def run_campaign(
    tasks: Iterable[CampaignTask],
    workers: int = 1,
    task_timeout_s: Optional[float] = None,
    in_process: Optional[bool] = None,
    on_record: Optional[Callable[[int, Any], None]] = None,
) -> CampaignReport:
    """Execute ``tasks`` and merge the outcomes into a task-ordered report.

    ``workers=1`` runs in-process when the parent is hash-seed pinned
    (no spawn cost); otherwise, and for ``workers>1``, isolated spawned
    workers pinned to :func:`canonical_hash_seed` execute the tasks.
    ``in_process`` overrides the auto-detection: ``True`` forces the
    inline path (caller vouches for determinism), ``False`` forces
    spawning even at ``workers=1``. ``on_record`` is invoked in
    completion order with ``(task_index, record)`` for progress display —
    the report itself is always merged in task order.
    """
    task_list = list(tasks)
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    seen: set = set()
    for task in task_list:
        if task.task_id in seen:
            raise ValueError(f"duplicate task_id {task.task_id!r}")
        seen.add(task.task_id)
        if task.runner not in BUILTIN_RUNNERS and ":" not in task.runner:
            raise ValueError(
                f"task {task.task_id!r}: unknown runner {task.runner!r}"
            )

    hash_seed = canonical_hash_seed()
    wall_start = time.perf_counter()
    if not task_list:
        return CampaignReport(records=[], workers=workers,
                              hash_seed=hash_seed, wall_s=0.0)

    use_inline = in_process if in_process is not None else (
        workers == 1 and parent_is_pinned()
    )
    if use_inline and workers == 1:
        records = _run_serial(task_list, on_record)
    else:
        records_map = _run_pool(
            task_list, workers, hash_seed, task_timeout_s, on_record
        )
        records = [records_map[index] for index in range(len(task_list))]

    return CampaignReport(
        records=records,
        workers=workers,
        hash_seed=hash_seed,
        wall_s=round(time.perf_counter() - wall_start, 4),
    )


def _run_pool(
    tasks: Sequence[CampaignTask],
    workers: int,
    hash_seed: str,
    task_timeout_s: Optional[float],
    on_record: Optional[Callable[[int, Any], None]],
) -> Dict[int, Any]:
    ctx = mp.get_context("spawn")
    pool_size = max(1, min(workers, len(tasks)))
    next_worker_id = 0

    def new_worker() -> _Worker:
        nonlocal next_worker_id
        worker = _Worker(ctx, next_worker_id, hash_seed, task_timeout_s)
        next_worker_id += 1
        return worker

    pool: List[_Worker] = [new_worker() for _ in range(pool_size)]
    pending: deque = deque((index, 1) for index in range(len(tasks)))
    records: Dict[int, Any] = {}

    def fail_or_retry(worker: _Worker, kind: str) -> None:
        """Handle a dead/overdue worker holding an in-flight frame."""
        index, attempts, task, _ = worker.current  # type: ignore[misc]
        worker.discard()
        if attempts < MAX_ATTEMPTS:
            pending.appendleft((index, attempts + 1))
        else:
            exitcode = worker.proc.exitcode
            records[index] = CampaignFailure(
                task_id=task.task_id,
                runner=task.runner,
                kind=kind,
                error=(
                    f"worker {worker.id} {kind}"
                    + (f" (exitcode {exitcode})" if kind == "crash" else "")
                    + f" after {attempts} attempt(s)"
                ),
                seed=getattr(task.options, "seed", None),
                worker_id=worker.id,
                attempts=attempts,
            )
            if on_record is not None:
                on_record(index, records[index])

    try:
        while len(records) < len(tasks):
            # Keep every live worker fed.
            for slot, worker in enumerate(pool):
                if worker.current is None and pending:
                    if not worker.proc.is_alive():
                        worker.discard()
                        worker = pool[slot] = new_worker()
                    index, attempts = pending.popleft()
                    worker.dispatch(index, attempts, tasks[index],
                                    task_timeout_s)

            for slot, worker in enumerate(pool):
                if worker.current is None:
                    continue
                index, attempts, task, deadline = worker.current
                try:
                    blob = worker.result_q.get(timeout=_POLL_S)
                except queue_mod.Empty:
                    if not worker.proc.is_alive():
                        fail_or_retry(worker, "crash")
                        pool[slot] = new_worker()
                    elif deadline is not None and time.monotonic() > deadline:
                        # The worker already printed a faulthandler dump
                        # (armed in-worker at task start).
                        fail_or_retry(worker, "timeout")
                        pool[slot] = new_worker()
                    continue
                result_index, record = pickle.loads(blob)
                worker.current = None
                records[result_index] = record
                if on_record is not None:
                    on_record(result_index, record)
    finally:
        for worker in pool:
            worker.shutdown()
    return records
