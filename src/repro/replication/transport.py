"""Transport abstraction: how replicas reach each other and their clients.

In the paper, all Spire traffic — replica-to-replica Prime messages and
replica-to-proxy update delivery — flows over the Spines overlay. Tests
and LAN scenarios can instead use the raw simulated network. Both are
hidden behind the two-method :class:`Transport` interface, which is the
bottom layer of the replication runtime: everything a protocol node sends
(:class:`~repro.replication.runtime.ReplicationRuntime`) ends up in one of
these.
"""

from __future__ import annotations

from typing import Any, Optional, Tuple

from ..simnet import Process
from ..spines.overlay import OverlayStack

__all__ = ["Transport", "DirectTransport", "OverlayTransport"]


class Transport:
    """Minimal send/unwrap interface used by protocol nodes."""

    def send(self, dst: str, payload: Any, size_bytes: int = 256) -> bool:
        raise NotImplementedError

    def unwrap(self, message: Any) -> Optional[Tuple[str, Any]]:
        """Extract (source, payload) from an incoming raw message, or None
        if the message does not belong to this transport."""
        raise NotImplementedError


class _SendCounters:
    """Shared observability wiring for transports.

    Counters are resolved once at construction; when observability is
    disabled (or no ``obs`` is given) sends pay only a None test.
    """

    _sent = None
    _sent_bytes = None

    def _bind_obs(self, obs, prefix: str) -> None:
        if obs is not None and getattr(obs, "enabled", False):
            self._sent = obs.counter(f"{prefix}.sent")
            self._sent_bytes = obs.counter(f"{prefix}.sent_bytes")

    def _count_send(self, size_bytes: int) -> None:
        sent = self._sent
        if sent is not None:
            sent.value += 1
            self._sent_bytes.value += size_bytes


class DirectTransport(_SendCounters, Transport):
    """Point-to-point delivery over the raw simulated network."""

    def __init__(self, process: Process, obs=None) -> None:
        self._process = process
        self._bind_obs(obs, "prime.transport.direct")

    def send(self, dst: str, payload: Any, size_bytes: int = 256) -> bool:
        sent = self._sent
        if sent is not None:
            sent.value += 1
            self._sent_bytes.value += size_bytes
        return self._process.send(dst, payload, size_bytes)

    def unwrap(self, message: Any) -> Optional[Tuple[str, Any]]:
        return None  # raw network messages arrive with src already split out


class OverlayTransport(_SendCounters, Transport):
    """Delivery via a Spines overlay stack."""

    def __init__(self, stack: OverlayStack, obs=None) -> None:
        self._stack = stack
        self._bind_obs(obs, "prime.transport.overlay")

    def send(self, dst: str, payload: Any, size_bytes: int = 256) -> bool:
        sent = self._sent
        if sent is not None:
            sent.value += 1
            self._sent_bytes.value += size_bytes
        return self._stack.send(dst, payload, size_bytes=size_bytes)

    def unwrap(self, message: Any) -> Optional[Tuple[str, Any]]:
        return OverlayStack.unwrap(message)
