"""Three-phase agreement state shared by leader-based protocols.

Prime's ordering layer and the PBFT baseline run the same
pre-prepare/prepare/commit skeleton per sequence-number slot; only the
proposal *content* (a summary matrix vs. an update batch) and the shape
of the final ordered record differ. :class:`ThreePhaseSlot` owns the
common per-slot state — vote tables, this replica's own votes, the
prepare certificate — and the quorum transitions over it, built on
:mod:`repro.replication.quorum` so certificates are assembled
identically everywhere.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from .messages import SignedMessage
from .quorum import assemble_certificate

__all__ = ["ThreePhaseSlot"]


@dataclass
class ThreePhaseSlot:
    """Agreement state for one global sequence number.

    Vote keys are ``(view, digest)`` pairs: a view change restarts the
    vote for the same slot, and votes for different proposal digests must
    never pool. ``ordered`` is protocol-specific (Prime stores the commit
    certificate alongside the winning pre-prepare; the baseline does
    not), so its tuple shape is left to the subclass/owner.
    """

    seq: int
    #: view -> signed PrePrepare received for this slot in that view
    pre_prepares: Dict[int, SignedMessage] = field(default_factory=dict)
    #: (view, digest) -> sender -> signed Prepare
    prepares: Dict[Tuple[int, str], Dict[str, SignedMessage]] = field(
        default_factory=dict
    )
    #: (view, digest) -> sender -> signed Commit
    commits: Dict[Tuple[int, str], Dict[str, SignedMessage]] = field(
        default_factory=dict
    )
    #: set when this replica sent its Prepare: (view, digest)
    prepared_vote: Optional[Tuple[int, str]] = None
    #: set when this replica sent its Commit: (view, digest)
    committed_vote: Optional[Tuple[int, str]] = None
    #: highest view in which this slot reached a prepare certificate here
    prepared_cert: Optional[Tuple[int, str]] = None
    #: the certificate itself: quorum of signed Prepare/Commit messages
    prepared_proof: Optional[Tuple[SignedMessage, ...]] = None
    #: the ordered result; tuple shape is protocol-specific
    ordered: Optional[Tuple] = None

    @property
    def is_ordered(self) -> bool:
        return self.ordered is not None

    # -- vote recording ------------------------------------------------
    def record_prepare(
        self, view: int, digest: str, sender: str, signed: SignedMessage
    ) -> None:
        self.prepares.setdefault((view, digest), {})[sender] = signed

    def record_commit(
        self, view: int, digest: str, sender: str, signed: SignedMessage
    ) -> None:
        self.commits.setdefault((view, digest), {})[sender] = signed

    def prepare_voters(self, view: int, digest: str) -> Dict[str, SignedMessage]:
        return self.prepares.get((view, digest), {})

    def commit_voters(self, view: int, digest: str) -> Dict[str, SignedMessage]:
        return self.commits.get((view, digest), {})

    # -- own-vote guards -----------------------------------------------
    def should_vote_prepare(self, view: int) -> bool:
        """Vote at most once per view, never regressing to an older one."""
        return self.prepared_vote is None or self.prepared_vote[0] < view

    def should_vote_commit(self, view: int, digest: str) -> bool:
        """Commit only what we prepared, at most once per view."""
        return (
            self.committed_vote is None or self.committed_vote[0] < view
        ) and self.prepared_vote == (view, digest)

    # -- quorum transitions --------------------------------------------
    def note_prepared(self, view: int, digest: str, quorum: int) -> bool:
        """Check for a prepare certificate at ``(view, digest)``.

        Returns True once a quorum of prepares exists; as a side effect,
        (re)establishes :attr:`prepared_cert`/:attr:`prepared_proof` when
        this view is at least as new as the recorded certificate's.
        """
        voters = self.prepares.get((view, digest), {})
        if len(voters) < quorum:
            return False
        if self.prepared_cert is None or self.prepared_cert[0] <= view:
            self.prepared_cert = (view, digest)
            self.prepared_proof = assemble_certificate(voters, quorum)
        return True

    def commit_certificate(
        self, view: int, digest: str, quorum: int
    ) -> Optional[Tuple[SignedMessage, ...]]:
        """The commit certificate for ``(view, digest)``, once a quorum of
        commits exists; None below quorum."""
        voters = self.commits.get((view, digest), {})
        if len(voters) < quorum:
            return None
        return assemble_certificate(voters, quorum)
