"""Bounded-backoff retry primitives shared by every resend path.

All retransmission in the reproduction — Prime state transfer, PBFT
head-slot resends, client/proxy/HMI update resubmission — flows through
one policy type so the backoff guarantees (bounded rate, deterministic
jitter, never giving up) hold uniformly across protocols.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

__all__ = ["RetryPolicy", "RetrySchedule"]


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded exponential backoff with jitter for resend paths.

    Replaces fixed-interval retries: the delay for attempt ``i`` grows as
    ``base_ms * factor**i`` up to ``max_ms``, with a multiplicative jitter
    in ``[1, 1 + jitter_frac)`` drawn from the caller's RNG stream (so
    simulated retries stay deterministic per seed). After ``max_attempts``
    the delay stays pinned at the cap — retries never stop entirely,
    because a replica that gives up on state transfer is lost forever, but
    their rate is bounded so a partitioned replica cannot flood the
    network on rejoin.
    """

    base_ms: float = 100.0
    factor: float = 2.0
    max_ms: float = 4000.0
    max_attempts: int = 8
    jitter_frac: float = 0.25

    def __post_init__(self) -> None:
        if self.base_ms <= 0 or self.factor < 1.0 or self.max_ms < self.base_ms:
            raise ValueError("invalid retry policy parameters")

    def delay_ms(self, attempt: int, rng: Optional[random.Random] = None) -> float:
        """Backoff delay before retry number ``attempt`` (0-based)."""
        exponent = min(attempt, self.max_attempts)
        delay = min(self.max_ms, self.base_ms * self.factor ** exponent)
        if rng is not None and self.jitter_frac > 0.0:
            delay *= 1.0 + self.jitter_frac * rng.random()
        return delay

    def capped(self, attempt: int) -> bool:
        """True once the backoff has reached its bounded ceiling."""
        return attempt >= self.max_attempts


class RetrySchedule:
    """A :class:`RetryPolicy` plus its attempt counter for one retry loop.

    Owns the ``attempts`` bookkeeping that every caller of ``delay_ms``
    otherwise re-implements: ``next_delay_ms()`` returns the delay for the
    current attempt and advances the counter; ``reset()`` rewinds after
    success so the next failure starts from the base delay again.
    """

    def __init__(
        self, policy: RetryPolicy, rng: Optional[random.Random] = None
    ) -> None:
        self.policy = policy
        self.rng = rng
        self.attempts = 0

    def next_delay_ms(self) -> float:
        delay = self.policy.delay_ms(self.attempts, self.rng)
        self.attempts += 1
        return delay

    def reset(self) -> None:
        self.attempts = 0

    @property
    def capped(self) -> bool:
        return self.policy.capped(self.attempts)
