"""View-change / epoch scaffold shared by leader-based protocols.

Both Prime and the PBFT baseline change leaders the same way: collect
per-epoch votes (suspects, view-changes) until thresholds fire, then have
the incoming leader derive — deterministically, so every replica can
re-check it — which prepared proposals the new view must re-issue. The
vote bookkeeping (:class:`EpochVoteTable`) and the derivation
(:func:`derive_reproposals`) live here; the protocol-specific validation
(what makes a ViewChange *valid*) stays with each protocol.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

from .messages import SignedMessage

__all__ = ["EpochVoteTable", "derive_reproposals"]


class EpochVoteTable:
    """Vote table ``epoch -> sender -> signed vote``.

    One sender counts once per epoch (re-votes overwrite). Supports
    mapping-style introspection (``epoch in table``, iteration over
    epochs) so tests and monitors can inspect it like the plain dicts it
    replaces.
    """

    def __init__(self) -> None:
        self._epochs: Dict[int, Dict[str, SignedMessage]] = {}

    def record(self, epoch: int, sender: str, signed: SignedMessage) -> int:
        """Record one vote; returns the vote count for ``epoch``."""
        senders = self._epochs.setdefault(epoch, {})
        senders[sender] = signed
        return len(senders)

    def senders(self, epoch: int) -> Dict[str, SignedMessage]:
        return self._epochs.get(epoch, {})

    def count(self, epoch: int) -> int:
        return len(self._epochs.get(epoch, ()))

    def chosen(self, epoch: int, quorum: int) -> List[SignedMessage]:
        """A deterministic quorum-slice of the epoch's votes (sender-name
        order) — the set a new leader embeds in its NewView."""
        senders = self.senders(epoch)
        return [senders[s] for s in sorted(senders)][:quorum]

    def drop_below(self, bound: int) -> None:
        for epoch in [e for e in self._epochs if e < bound]:
            del self._epochs[epoch]

    def clear(self) -> None:
        self._epochs.clear()

    # -- mapping-style introspection -----------------------------------
    def get(self, epoch: int, default: Any = None) -> Any:
        return self._epochs.get(epoch, default)

    def __getitem__(self, epoch: int) -> Dict[str, SignedMessage]:
        return self._epochs[epoch]

    def __contains__(self, epoch: int) -> bool:
        return epoch in self._epochs

    def __iter__(self):
        return iter(self._epochs)

    def __len__(self) -> int:
        return len(self._epochs)


def derive_reproposals(
    view_changes: Iterable[Any],
    *,
    anchor_of: Callable[[Any], int],
    entries_of: Callable[[Any], Iterable[Any]],
    content_of: Callable[[Any], Any],
    empty: Any = (),
) -> Tuple[int, List[Tuple[int, Any]]]:
    """Deterministically derive a new view's re-proposals.

    ``anchor_of`` reads a ViewChange's execution floor (stable checkpoint
    seq for Prime, last-executed seq for the baseline); ``entries_of``
    its prepared entries (each with ``seq``/``view``/``digest``
    attributes); ``content_of`` the proposal content to re-issue from a
    winning entry. For every seq above the highest anchor, the prepared
    entry from the highest view wins (digest as the deterministic
    tie-break); gaps become ``empty`` (no-op) proposals.

    Returns ``(start_seq, [(seq, content), ...])``. Every replica runs
    this same derivation over the same ViewChange set, so a Byzantine
    new leader cannot smuggle in proposals the set does not justify.
    """
    vcs = list(view_changes)
    start_seq = max((anchor_of(vc) for vc in vcs), default=0)
    best: Dict[int, Any] = {}
    for vc in vcs:
        for entry in entries_of(vc):
            if entry.seq <= start_seq:
                continue
            current = best.get(entry.seq)
            if (
                current is None
                or entry.view > current.view
                or (entry.view == current.view and entry.digest < current.digest)
            ):
                best[entry.seq] = entry
    max_seq = max(best.keys(), default=start_seq)
    proposals: List[Tuple[int, Any]] = []
    for seq in range(start_seq + 1, max_seq + 1):
        entry = best.get(seq)
        proposals.append((seq, content_of(entry) if entry is not None else empty))
    return start_seq, proposals
