"""Protocol-agnostic replication runtime.

The substrate both BFT protocols in this reproduction (Prime and the
PBFT baseline) are built on, layered bottom-up:

* :mod:`~repro.replication.transport` — how replicas reach each other:
  the two-method :class:`Transport` interface with direct-network and
  Spines-overlay implementations, send accounting wired into
  :mod:`repro.obs`;
* :mod:`~repro.replication.retry` — bounded-backoff retransmission
  (:class:`RetryPolicy` / :class:`RetrySchedule`) shared by every resend
  path: Prime state transfer, PBFT head-slot retransmission,
  client/proxy resubmission;
* :mod:`~repro.replication.messages` — the :class:`SignedMessage`
  envelope (authenticated links);
* :mod:`~repro.replication.dispatch` — typed handler registration with
  sender authentication and per-kind receive counters/timing;
* :mod:`~repro.replication.runtime` — :class:`ReplicationRuntime`:
  sign/verify, membership fan-out, loopback rules, per-kind send
  counters;
* :mod:`~repro.replication.quorum` — vote collection
  (:class:`QuorumTracker`), threshold-share tracking toward combined
  signatures (:class:`ThresholdShareTracker`), and signed-certificate
  assembly/verification;
* :mod:`~repro.replication.ordering` — the shared three-phase
  (pre-prepare/prepare/commit) per-slot agreement state;
* :mod:`~repro.replication.epoch` — view-change scaffolding: per-epoch
  vote tables and the deterministic re-proposal derivation.

Protocol packages (:mod:`repro.prime`, :mod:`repro.pbft`) mount their
stage objects on these primitives; see DESIGN.md §8 for the layering.
"""

from .dispatch import Dispatcher, sender_field_check
from .epoch import EpochVoteTable, derive_reproposals
from .messages import SignedMessage
from .ordering import ThreePhaseSlot
from .quorum import (
    QuorumTracker,
    ThresholdShareTracker,
    assemble_certificate,
    collect_valid_voters,
    verify_certificate,
)
from .retry import RetryPolicy, RetrySchedule
from .runtime import ReplicationRuntime
from .transport import DirectTransport, OverlayTransport, Transport

__all__ = [
    "Dispatcher",
    "DirectTransport",
    "EpochVoteTable",
    "OverlayTransport",
    "QuorumTracker",
    "ReplicationRuntime",
    "RetryPolicy",
    "RetrySchedule",
    "SignedMessage",
    "ThreePhaseSlot",
    "ThresholdShareTracker",
    "Transport",
    "assemble_certificate",
    "collect_valid_voters",
    "derive_reproposals",
    "sender_field_check",
    "verify_certificate",
]
