"""Protocol-agnostic wire envelope shared by every replication protocol.

:class:`SignedMessage` is the authenticated-link envelope from the paper:
receivers drop any message whose signature does not verify against the
claimed sender, confining Byzantine replicas to lying in *their own*
messages. Both Prime and the PBFT baseline wrap every protocol message in
it; the canonical encoding (:mod:`repro.crypto.encoding`) keys dataclasses
by class *name*, so the envelope living here is wire-compatible with the
historical ``repro.prime.messages.SignedMessage`` (which re-exports it).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from ..crypto.provider import Signature

__all__ = ["SignedMessage"]


@dataclass(frozen=True)
class SignedMessage:
    """Envelope: ``payload`` signed by ``signature.signer``."""

    payload: Any
    signature: Signature
