"""Message dispatch: handler registration plus per-kind observability.

Replaces the hand-rolled ``if/elif`` (or per-call dict) dispatch that each
protocol node used to carry. A node registers one handler per payload
type; :meth:`Dispatcher.dispatch` authenticates the claimed sender,
routes, and — when observability is enabled — counts the message and
times the handler under ``{prefix}.msgs.{Kind}`` /
``{prefix}.handler.{Kind}.wall_ms``. Instruments are resolved lazily and
cached per kind, so the registry is consulted once per message *type*,
not once per message.

The sender check runs *before* the handler: a message whose claimed
sender field does not match the envelope signer (or names a non-member)
is dropped without ever reaching protocol code — the "Byzantine replicas
can only lie in their own messages" rule enforced in one place.
"""

from __future__ import annotations

from time import perf_counter
from typing import Any, Callable, Dict, Optional

from ..obs import NULL_OBS, Observability
from .messages import SignedMessage

__all__ = ["Dispatcher", "sender_field_check"]

#: Validates a payload's claimed sender against the envelope signer.
SenderCheck = Callable[[Any, str], bool]

#: A registered handler: ``handler(signed, payload)``.
Handler = Callable[[SignedMessage, Any], None]


def sender_field_check(field: str, membership_fn: Callable[[], Any]) -> SenderCheck:
    """The standard check: ``payload.<field>`` must equal the envelope
    signer and be a current member. ``membership_fn`` is consulted per
    message so a reconfigured membership takes effect immediately."""

    def check(payload: Any, signer: str) -> bool:
        claimed = getattr(payload, field)
        return claimed == signer and claimed in membership_fn()

    return check


class Dispatcher:
    """Typed message router for one replica.

    ``metric_prefix`` namespaces the per-kind instruments (``prime``,
    ``pbft``, ...); keep it stable — the names appear in scenario
    reports.
    """

    def __init__(
        self, obs: Optional[Observability] = None, metric_prefix: str = "replication"
    ) -> None:
        self.obs = obs if obs is not None else NULL_OBS
        self._prefix = metric_prefix
        self._handlers: Dict[type, Handler] = {}
        self._sender_checks: Dict[type, SenderCheck] = {}
        # per-kind (check, handler, counter.inc, histogram.observe) route
        # entries, resolved lazily (once per kind) so the dispatch hot
        # path does a single dict lookup per message; invalidated by
        # register() when a handler is rebound
        self._route: Dict[type, Any] = {}

    def register(
        self,
        kind: type,
        handler: Handler,
        sender_check: Optional[SenderCheck] = None,
    ) -> None:
        """Bind ``handler`` for payload type ``kind`` (replacing any
        previous binding — recovery re-registers against fresh stages)."""
        self._handlers[kind] = handler
        if sender_check is not None:
            self._sender_checks[kind] = sender_check
        else:
            self._sender_checks.pop(kind, None)
        self._route.pop(kind, None)

    def _dispatch_slow(self, signed: SignedMessage, payload: Any) -> None:
        """First message of a kind: authenticate, route, then cache the
        route entry. Instruments are created only once a message of the
        kind actually reaches its handler, matching the lazy behaviour
        the per-message lookups had."""
        kind = payload.__class__
        check = self._sender_checks.get(kind)
        if check is not None and not check(payload, signed.signature.signer):
            return
        handler = self._handlers.get(kind)
        if handler is None:
            return
        if not self.obs.enabled:
            self._route[kind] = (check, handler, None, None)
            handler(signed, payload)
            return
        counter = self.obs.counter(f"{self._prefix}.msgs.{kind.__name__}")
        timing = self.obs.histogram(
            f"{self._prefix}.handler.{kind.__name__}.wall_ms", deterministic=False
        )
        self._route[kind] = (check, handler, counter.inc, timing.observe)
        counter.inc()
        started = perf_counter()
        handler(signed, payload)
        timing.observe((perf_counter() - started) * 1000.0)

    def dispatch(self, signed: SignedMessage) -> None:
        """Authenticate, route and account one verified envelope."""
        payload = signed.payload
        entry = self._route.get(payload.__class__)
        if entry is None:
            self._dispatch_slow(signed, payload)
            return
        check, handler, inc, observe = entry
        if check is not None and not check(payload, signed.signature.signer):
            return
        if inc is None:
            handler(signed, payload)
            return
        inc()
        started = perf_counter()
        handler(signed, payload)
        observe((perf_counter() - started) * 1000.0)
