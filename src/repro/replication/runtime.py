"""The replication runtime: signing, sending and receiving for one replica.

:class:`ReplicationRuntime` is the layer a protocol node mounts its
stages on. It owns the envelope discipline (sign on the way out, verify
on the way in), the fan-out over the replica membership, the loopback
rule (does a self-addressed message dispatch locally or get dropped?),
and per-kind send accounting — everything that used to be copy-pasted
between ``PrimeNode`` and ``PbftNode``.

The transport is read through the owning process on every send
(``process.transport``), never captured: deployments install an
:class:`~repro.replication.transport.OverlayTransport` *after*
construction, and attack installers wrap ``node.transport.send`` at
runtime — both must take effect immediately.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, Optional, Tuple

from ..crypto.provider import CryptoProvider
from ..obs import NULL_OBS, Observability
from .dispatch import Dispatcher
from .messages import SignedMessage
from .transport import Transport

__all__ = ["ReplicationRuntime"]


class ReplicationRuntime:
    """Protocol-agnostic send/receive machinery for one replica process.

    ``replicas_fn`` returns the current membership (consulted per
    operation, so a swapped config takes effect immediately);
    ``size_of`` models wire size per payload; ``loopback_dispatch``
    selects the self-send rule: Prime drops self-addressed point-to-point
    messages before signing, the PBFT baseline signs and dispatches them
    locally.
    """

    def __init__(
        self,
        process: Any,
        crypto: CryptoProvider,
        replicas_fn: Callable[[], Tuple[str, ...]],
        dispatcher: Dispatcher,
        size_of: Callable[[Any], int],
        obs: Optional[Observability] = None,
        metric_prefix: str = "replication",
        loopback_dispatch: bool = False,
    ) -> None:
        self._process = process
        self.crypto = crypto
        self.replicas_fn = replicas_fn
        self.dispatcher = dispatcher
        self.size_of = size_of
        self.obs = obs if obs is not None else NULL_OBS
        self._prefix = metric_prefix
        self.loopback_dispatch = loopback_dispatch
        self._send_counts: Dict[type, Any] = {}

    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        return self._process.name

    @property
    def transport(self) -> Transport:
        return self._process.transport

    # ------------------------------------------------------------------
    # Envelope discipline
    # ------------------------------------------------------------------
    def sign(self, payload: Any) -> SignedMessage:
        return SignedMessage(payload, self.crypto.sign(self.name, payload))

    def verify(self, signed: SignedMessage) -> bool:
        return self.crypto.verify(signed.signature, signed.payload)

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------
    def _count_send(self, kind: type, sends: int) -> None:
        if not self.obs.enabled or sends <= 0:
            return
        counter = self._send_counts.get(kind)
        if counter is None:
            counter = self.obs.counter(f"{self._prefix}.send.{kind.__name__}")
            self._send_counts[kind] = counter
        counter.inc(sends)

    def broadcast(self, payload: Any, include_self: bool = True) -> SignedMessage:
        """Sign once, send to every peer, optionally dispatch locally.

        Local dispatch goes through the *process's* ``_dispatch`` so
        instrumentation-time wrappers (attack installers) intercept it
        exactly as they intercept network-delivered messages.
        """
        signed = self.sign(payload)
        size = self.size_of(payload)
        name = self.name
        sends = 0
        transport = self.transport
        for peer in self.replicas_fn():
            if peer == name:
                continue
            transport.send(peer, signed, size_bytes=size)
            sends += 1
        self._count_send(type(payload), sends)
        if include_self:
            self._process._dispatch(signed)
        return signed

    def send_to(self, peer: str, payload: Any) -> None:
        """Point-to-point send, applying this protocol's loopback rule."""
        if peer == self.name:
            if self.loopback_dispatch:
                self._process._dispatch(self.sign(payload))
            return
        self.transport.send(peer, self.sign(payload), size_bytes=self.size_of(payload))
        self._count_send(type(payload), 1)

    def resend(
        self,
        signed: SignedMessage,
        peers: Optional[Iterable[str]] = None,
        size_bytes: Optional[int] = None,
    ) -> None:
        """Retransmit an already-signed message (no re-sign, no loopback)."""
        size = size_bytes if size_bytes is not None else self.size_of(signed.payload)
        name = self.name
        sends = 0
        transport = self.transport
        for peer in peers if peers is not None else self.replicas_fn():
            if peer == name:
                continue
            transport.send(peer, signed, size_bytes=size)
            sends += 1
        self._count_send(type(signed.payload), sends)

    # ------------------------------------------------------------------
    # Receiving
    # ------------------------------------------------------------------
    def receive(self, payload: Any) -> None:
        """The body of ``Process.on_message``: unwrap the transport
        envelope, drop anything whose signature does not verify, and
        dispatch the rest."""
        unwrapped = self._process.transport.unwrap(payload)
        if unwrapped is not None:
            payload = unwrapped[1]
        if isinstance(payload, SignedMessage):
            if not self.crypto.verify(payload.signature, payload.payload):
                return
            self._process._dispatch(payload)

    def receive_unwrapped(self, payload: Any) -> None:
        """Like :meth:`receive` for a payload already stripped of its
        transport envelope — callers that had to unwrap for their own
        routing (e.g. the SCADA replica's submission path) avoid a second
        unwrap per message."""
        if isinstance(payload, SignedMessage):
            if not self.crypto.verify(payload.signature, payload.payload):
                return
            self._process._dispatch(payload)
