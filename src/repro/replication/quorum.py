"""Quorum math and signed-certificate collection shared by all protocols.

Every agreement step in the reproduction — pre-order certificates,
prepare/commit certificates, stable checkpoints, view-change sets — has
the same shape: collect signed votes keyed by *what* is being voted on
(a round key) and *which value* (a digest), declare success at a
protocol-defined quorum, and keep a deterministic slice of the votes as a
transferable certificate. This module owns that shape once:

* :class:`QuorumTracker` — the two-level vote table
  ``key -> digest -> sender -> signed vote`` (last write per sender wins,
  so duplicates never inflate a count, and an equivocating sender can add
  at most one vote per digest);
* :func:`assemble_certificate` — the canonical certificate slice: the
  quorum-first voters in sender-name order, so every correct replica
  assembles the identical certificate from the same vote set;
* :func:`collect_valid_voters` / :func:`verify_certificate` — the receive
  side: re-check a certificate built elsewhere, either *strictly* (one
  bad vote poisons the whole certificate — the rule for checkpoint and
  reconciliation proofs, whose senders claim the set is wholly valid) or
  *leniently* (bad votes are skipped — the rule for view-change prepared
  entries, where a Byzantine peer must not be able to invalidate honest
  votes by appending garbage).

The thresholds themselves stay in the protocol configs (Prime:
``2f + k + 1`` of ``n = 3f + 2k + 1``; PBFT: ``ceil((n + f + 1) / 2)``) —
callers pass the quorum in, this module enforces it uniformly.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, List, Optional, Set, Tuple

from .messages import SignedMessage

__all__ = [
    "QuorumTracker",
    "ThresholdShareTracker",
    "assemble_certificate",
    "collect_valid_voters",
    "verify_certificate",
]


def assemble_certificate(
    voters: Dict[str, SignedMessage], quorum: int
) -> Tuple[SignedMessage, ...]:
    """The canonical certificate from a vote map: quorum-first voters in
    sender-name order. Deterministic in the vote *set*, not the arrival
    order, so replicas that saw votes in different orders still assemble
    byte-identical certificates."""
    return tuple(voters[s] for s in sorted(voters))[:quorum]


class QuorumTracker:
    """Vote table ``key -> digest -> sender -> signed vote``.

    ``key`` identifies the decision round (a sequence number, a
    ``(view, seq)`` pair — anything hashable); ``digest`` the value voted
    for. One sender contributes at most one vote per ``(key, digest)``
    (re-votes overwrite), so duplicate deliveries never reach quorum
    early, and an equivocating sender splits its weight across digests
    instead of double-counting any one of them.
    """

    def __init__(self, quorum: Optional[int] = None) -> None:
        #: default threshold for :meth:`has_quorum` / :meth:`certificate`;
        #: pass per-call to track a config whose quorum can be swapped.
        self.quorum = quorum
        self._votes: Dict[Any, Dict[str, Dict[str, SignedMessage]]] = {}

    # -- recording -----------------------------------------------------
    def add(self, key: Any, digest: str, sender: str, signed: SignedMessage) -> int:
        """Record one vote; returns the vote count for ``(key, digest)``."""
        senders = self._votes.setdefault(key, {}).setdefault(digest, {})
        senders[sender] = signed
        return len(senders)

    # -- queries -------------------------------------------------------
    def voters(self, key: Any, digest: str) -> Dict[str, SignedMessage]:
        return self._votes.get(key, {}).get(digest, {})

    def count(self, key: Any, digest: str) -> int:
        return len(self.voters(key, digest))

    def digests(self, key: Any) -> List[str]:
        """Every digest that received at least one vote for ``key``."""
        return list(self._votes.get(key, ()))

    def equivocators(self, key: Any) -> Set[str]:
        """Senders that voted for more than one digest under ``key``."""
        seen: Dict[str, int] = {}
        for senders in self._votes.get(key, {}).values():
            for sender in senders:
                seen[sender] = seen.get(sender, 0) + 1
        return {sender for sender, n in seen.items() if n > 1}

    def _threshold(self, quorum: Optional[int]) -> int:
        if quorum is None:
            quorum = self.quorum
        if quorum is None:
            raise ValueError("no quorum configured or supplied")
        return quorum

    def has_quorum(self, key: Any, digest: str, quorum: Optional[int] = None) -> bool:
        return self.count(key, digest) >= self._threshold(quorum)

    def certificate(
        self, key: Any, digest: str, quorum: Optional[int] = None
    ) -> Optional[Tuple[SignedMessage, ...]]:
        """The canonical certificate once quorum is reached, else None."""
        threshold = self._threshold(quorum)
        voters = self.voters(key, digest)
        if len(voters) < threshold:
            return None
        return assemble_certificate(voters, threshold)

    # -- garbage collection --------------------------------------------
    def drop(self, key: Any) -> None:
        self._votes.pop(key, None)

    def drop_upto(self, bound: Any) -> None:
        """Drop every key ``<= bound`` (ordered keys, e.g. sequence numbers)."""
        for key in [k for k in self._votes if k <= bound]:
            del self._votes[key]

    def clear(self) -> None:
        self._votes.clear()

    # -- mapping-style introspection -----------------------------------
    def __contains__(self, key: Any) -> bool:
        return key in self._votes

    def __iter__(self):
        return iter(self._votes)

    def __len__(self) -> int:
        return len(self._votes)


class ThresholdShareTracker:
    """Share table ``key -> value digest -> sender -> share``.

    The threshold-crypto sibling of :class:`QuorumTracker`: where the
    quorum tracker counts *signed votes* toward a transferable
    certificate, this tracks *threshold-signature shares* toward one
    combined signature. ``key`` identifies the thing being signed (a
    delivery-record key, a batch ``(origin, po_seq)`` pair), ``digest``
    distinguishes content variants (a Byzantine sender may sign a
    different record or Merkle root for the same key — variants must
    never pool their shares), and one sender contributes at most one
    share per ``(key, digest)`` (re-sends overwrite), so duplicates
    cannot fake reaching the combining threshold.

    The tracker is crypto-agnostic: shares are opaque values; callers
    hand :meth:`shares` to their provider's ``threshold_combine`` once
    :meth:`ready` says a combining attempt is worthwhile.
    """

    def __init__(self, threshold: Optional[int] = None) -> None:
        self.threshold = threshold
        self._shares: Dict[Any, Dict[Any, Dict[str, Any]]] = {}

    # -- recording -----------------------------------------------------
    def add(self, key: Any, digest: Any, sender: str, share: Any) -> int:
        """Record one share; returns the count for ``(key, digest)``."""
        senders = self._shares.setdefault(key, {}).setdefault(digest, {})
        senders[sender] = share
        return len(senders)

    # -- queries -------------------------------------------------------
    def shares(self, key: Any, digest: Any) -> List[Any]:
        """All distinct-sender shares for ``(key, digest)``."""
        return list(self._shares.get(key, {}).get(digest, {}).values())

    def count(self, key: Any, digest: Any) -> int:
        return len(self._shares.get(key, {}).get(digest, {}))

    def digests(self, key: Any) -> List[Any]:
        """Every content variant that received at least one share."""
        return list(self._shares.get(key, ()))

    def _bound(self, threshold: Optional[int]) -> int:
        if threshold is None:
            threshold = self.threshold
        if threshold is None:
            raise ValueError("no threshold configured or supplied")
        return threshold

    def ready(self, key: Any, digest: Any, threshold: Optional[int] = None) -> bool:
        """True once a combining attempt can possibly succeed."""
        return self.count(key, digest) >= self._bound(threshold)

    # -- garbage collection --------------------------------------------
    def drop(self, key: Any) -> None:
        self._shares.pop(key, None)

    def clear(self) -> None:
        self._shares.clear()

    def __contains__(self, key: Any) -> bool:
        return key in self._shares

    def __len__(self) -> int:
        return len(self._shares)


def collect_valid_voters(
    proof: Iterable[SignedMessage],
    *,
    membership: Any,
    verify_signed: Callable[[SignedMessage], bool],
    expected_kind: Any,
    check: Optional[Callable[[Any], bool]] = None,
    strict: bool = True,
    initial: Iterable[str] = (),
) -> Optional[Set[str]]:
    """Validate a certificate's votes; returns the distinct valid voters.

    A vote is valid when its payload is an ``expected_kind`` instance,
    passes the caller's content ``check``, names its signer in its own
    ``sender`` field, that sender is in ``membership``, and the envelope
    signature verifies.

    ``strict=True``: one invalid vote rejects the whole set (returns
    None) — the rule for proofs whose sender vouches for every vote.
    ``strict=False``: invalid votes are skipped — the rule for embedded
    vote sets where appended garbage must not invalidate honest votes.
    ``initial`` pre-seeds voters counted by construction (e.g. a leader
    whose pre-prepare doubles as its prepare vote).
    """
    voters: Set[str] = set(initial)
    for signed in proof:
        payload = signed.payload
        valid = (
            isinstance(payload, expected_kind)
            and (check is None or check(payload))
            and payload.sender == signed.signature.signer
            and payload.sender in membership
            and verify_signed(signed)
        )
        if valid:
            voters.add(payload.sender)
        elif strict:
            return None
    return voters


def verify_certificate(
    proof: Iterable[SignedMessage],
    *,
    quorum: int,
    membership: Any,
    verify_signed: Callable[[SignedMessage], bool],
    expected_kind: Any,
    check: Optional[Callable[[Any], bool]] = None,
    strict: bool = True,
    initial: Iterable[str] = (),
) -> bool:
    """True when ``proof`` carries a quorum of valid, distinct votes."""
    voters = collect_valid_voters(
        proof,
        membership=membership,
        verify_signed=verify_signed,
        expected_kind=expected_kind,
        check=check,
        strict=strict,
        initial=initial,
    )
    return voters is not None and len(voters) >= quorum
