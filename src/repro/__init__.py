"""repro: reproduction of "Network-Attack-Resilient Intrusion-Tolerant
SCADA for the Power Grid" (Spire, IEEE/IFIP DSN 2018).

Subpackages
-----------
``repro.simnet``     deterministic discrete-event substrate (virtual time)
``repro.obs``        observability: typed metrics, structured events, spans
``repro.crypto``     RSA / threshold-RSA / providers, from scratch
``repro.spines``     intrusion-tolerant overlay network
``repro.prime``      Prime: BFT replication with bounded delay under attack
``repro.pbft``       PBFT-style baseline (static timeouts)
``repro.scada``      power grid, Modbus-like protocol, RTU/PLC devices
``repro.core``       Spire itself: replicas, proxies, HMIs, deployments
``repro.attacks``    Byzantine / DoS / overlay attacks, red-team campaign
``repro.baselines``  traditional SCADA comparison system
``repro.chaos``      seeded chaos schedules + runtime invariant monitors
``repro.analysis``   table/figure rendering + scenario reports

Quickstart: see ``examples/quickstart.py`` or

    from repro.core import SpireDeployment, SpireOptions
    deployment = SpireDeployment(SpireOptions())
    deployment.start()
    deployment.run_for(10_000)           # 10 s of virtual time
    print(deployment.status_recorder.stats().row())
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
