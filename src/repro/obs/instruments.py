"""Typed metric instruments and the central registry.

Four instrument families cover everything the evaluation measures:

* :class:`Counter` — monotonically increasing event counts;
* :class:`Gauge` — last-written values with min/max watermarks;
* :class:`Histogram` — value distributions with full percentile stats;
* :class:`LatencyTracker` / :class:`IntervalCounter` — the keyed
  submit→ack latency and per-interval availability primitives the paper's
  figures are built from (formerly ``repro.core.metrics``).

Instruments live in a :class:`MetricRegistry`; ``registry.snapshot()``
returns a JSON-serializable, deterministically ordered image of every
instrument. Instruments that record *wall-clock* time (handler timing,
crypto profiling) are created with ``deterministic=False`` and excluded
from deterministic snapshots, so two runs of the same seed always produce
identical deterministic snapshots regardless of host speed.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

__all__ = [
    "LatencyStats",
    "Counter",
    "Gauge",
    "Histogram",
    "LatencyTracker",
    "IntervalCounter",
    "MergedImage",
    "MetricRegistry",
    "merge_instrument_images",
    "merge_metric_snapshots",
]


@dataclass(frozen=True)
class LatencyStats:
    """Summary statistics over a latency sample (all in ms)."""

    count: int
    mean: float
    median: float
    p90: float
    p99: float
    p999: float
    maximum: float
    minimum: float

    @staticmethod
    def from_samples(samples: Sequence[float]) -> "LatencyStats":
        if not samples:
            return LatencyStats(0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0)
        ordered = sorted(samples)

        def percentile(p: float) -> float:
            index = min(len(ordered) - 1, max(0, math.ceil(p * len(ordered)) - 1))
            return ordered[index]

        # fsum avoids catastrophic rounding on pathological inputs
        # (e.g. subnormal samples); the clamp pins the remaining one-ulp
        # division error inside [minimum, maximum].
        mean = math.fsum(ordered) / len(ordered)
        return LatencyStats(
            count=len(ordered),
            mean=min(max(mean, ordered[0]), ordered[-1]),
            median=percentile(0.50),
            p90=percentile(0.90),
            p99=percentile(0.99),
            p999=percentile(0.999),
            maximum=ordered[-1],
            minimum=ordered[0],
        )

    def row(self) -> str:
        return (
            f"n={self.count:7d}  mean={self.mean:8.2f}  median={self.median:8.2f}  "
            f"p90={self.p90:8.2f}  p99={self.p99:8.2f}  p99.9={self.p999:8.2f}  "
            f"max={self.maximum:8.2f}"
        )

    def to_dict(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "mean": self.mean,
            "median": self.median,
            "p90": self.p90,
            "p99": self.p99,
            "p999": self.p999,
            "max": self.maximum,
            "min": self.minimum,
        }


class _Instrument:
    """Base class: a named instrument that can snapshot itself."""

    kind = "instrument"

    def __init__(self, name: str, deterministic: bool = True) -> None:
        self.name = name
        self.deterministic = deterministic

    def snapshot(self) -> Any:
        raise NotImplementedError


class Counter(_Instrument):
    """A monotonically increasing count."""

    kind = "counter"

    def __init__(self, name: str, deterministic: bool = True) -> None:
        super().__init__(name, deterministic)
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def snapshot(self) -> int:
        return self.value


class Gauge(_Instrument):
    """A last-written value with min/max watermarks."""

    kind = "gauge"

    def __init__(self, name: str, deterministic: bool = True) -> None:
        super().__init__(name, deterministic)
        self.value: float = 0.0
        self.minimum: Optional[float] = None
        self.maximum: Optional[float] = None

    def set(self, value: float) -> None:
        self.value = value
        self.minimum = value if self.minimum is None else min(self.minimum, value)
        self.maximum = value if self.maximum is None else max(self.maximum, value)

    def snapshot(self) -> Dict[str, float]:
        return {
            "value": self.value,
            "min": 0.0 if self.minimum is None else self.minimum,
            "max": 0.0 if self.maximum is None else self.maximum,
        }


class Histogram(_Instrument):
    """A distribution of observed values (full-sample percentiles).

    Samples are retained in full up to ``max_samples``; beyond that the
    stream keeps counting/summing but stops storing (``overflowed`` flags
    the truncation so reports never silently present a clipped tail as
    complete).
    """

    kind = "histogram"

    def __init__(
        self, name: str, deterministic: bool = True, max_samples: int = 200_000
    ) -> None:
        super().__init__(name, deterministic)
        self.max_samples = max_samples
        self.samples: List[float] = []
        self.count = 0
        self.total = 0.0
        self.overflowed = 0

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        samples = self.samples
        if len(samples) < self.max_samples:
            samples.append(value)
        else:
            self.overflowed += 1

    def stats(self) -> LatencyStats:
        return LatencyStats.from_samples(self.samples)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def snapshot(self) -> Dict[str, float]:
        image = self.stats().to_dict()
        image["sum"] = self.total
        if self.overflowed:
            image["overflowed"] = self.overflowed
        return image


class LatencyTracker(_Instrument):
    """Tracks per-item submit → acknowledge latency, keyed arbitrarily.

    This is the end-to-end latency primitive behind the paper's CDFs and
    attack timelines.
    """

    kind = "latency"

    def __init__(self, name: str = "latency", deterministic: bool = True) -> None:
        super().__init__(name, deterministic)
        self._submitted: Dict[Tuple, float] = {}
        #: (ack_time, latency) pairs in acknowledgement order
        self.samples: List[Tuple[float, float]] = []
        self.duplicates = 0

    def submitted(self, key: Tuple, at: float) -> None:
        self._submitted.setdefault(key, at)

    def acknowledged(self, key: Tuple, at: float) -> Optional[float]:
        """Record completion; returns the latency (None for unknown/dup)."""
        start = self._submitted.pop(key, None)
        if start is None:
            self.duplicates += 1
            return None
        latency = at - start
        self.samples.append((at, latency))
        return latency

    @property
    def outstanding(self) -> int:
        return len(self._submitted)

    def latencies(self, since: float = 0.0, until: Optional[float] = None) -> List[float]:
        return [
            latency for at, latency in self.samples
            if at >= since and (until is None or at <= until)
        ]

    def stats(self, since: float = 0.0, until: Optional[float] = None) -> LatencyStats:
        return LatencyStats.from_samples(self.latencies(since, until))

    def cdf(self, points: int = 100) -> List[Tuple[float, float]]:
        """(latency, cumulative fraction) pairs for CDF plots/tables."""
        values = sorted(latency for _, latency in self.samples)
        if not values:
            return []
        step = max(1, len(values) // points)
        out = []
        for index in range(0, len(values), step):
            out.append((values[index], (index + 1) / len(values)))
        out.append((values[-1], 1.0))
        return out

    def cdf_at_marks(
        self, marks: Sequence[float], since: float = 0.0,
        until: Optional[float] = None,
    ) -> List[float]:
        """Latency at each CDF fraction in ``marks`` (for figure tables)."""
        values = sorted(self.latencies(since, until))
        if not values:
            return [0.0 for _ in marks]
        return [
            values[min(len(values) - 1, max(0, int(mark * len(values)) - 1))]
            for mark in marks
        ]

    def timeline(self, bucket_ms: float) -> List[Tuple[float, float, int]]:
        """(bucket_start, mean_latency, count) series for attack plots."""
        buckets: Dict[int, List[float]] = {}
        for at, latency in self.samples:
            buckets.setdefault(int(at // bucket_ms), []).append(latency)
        return [
            (index * bucket_ms, sum(values) / len(values), len(values))
            for index, values in sorted(buckets.items())
        ]

    def snapshot(self) -> Dict[str, float]:
        image = self.stats().to_dict()
        image["outstanding"] = self.outstanding
        image["duplicates"] = self.duplicates
        return image


class IntervalCounter(_Instrument):
    """Counts events per fixed interval (e.g. delivered updates/second) —
    the basis of the availability metric in the recovery and red-team
    experiments."""

    kind = "intervals"

    def __init__(
        self, interval_ms: float, name: str = "intervals",
        deterministic: bool = True,
    ) -> None:
        super().__init__(name, deterministic)
        self.interval_ms = interval_ms
        self._counts: Dict[int, int] = {}

    def record(self, at: float, count: int = 1) -> None:
        self._counts[int(at // self.interval_ms)] = (
            self._counts.get(int(at // self.interval_ms), 0) + count
        )

    def series(self, start_ms: float, end_ms: float) -> List[Tuple[float, int]]:
        first = int(start_ms // self.interval_ms)
        last = int(end_ms // self.interval_ms)
        return [
            (index * self.interval_ms, self._counts.get(index, 0))
            for index in range(first, last + 1)
        ]

    def availability(self, start_ms: float, end_ms: float, minimum: int = 1) -> float:
        """Fraction of intervals with at least ``minimum`` events."""
        series = self.series(start_ms, end_ms)
        if not series:
            return 0.0
        good = sum(1 for _, count in series if count >= minimum)
        return good / len(series)

    def snapshot(self) -> Dict[str, float]:
        total = sum(self._counts.values())
        return {"total": total, "intervals": len(self._counts)}


# ----------------------------------------------------------------------
# Snapshot merging (parallel campaign aggregation)
# ----------------------------------------------------------------------
# Snapshot images are plain JSON data, so cross-process aggregation works
# on the images themselves: counters add, watermarks take min/max, and
# sample-derived statistics that cannot be combined from two summaries
# (percentiles) are dropped rather than silently mis-merged. The rules
# are keyed by field name, which is uniform across instrument families.

#: image keys that accumulate across sources
_MERGE_ADD_KEYS = frozenset({
    "count", "sum", "total", "intervals", "duplicates", "outstanding",
    "overflowed", "dropped", "recorded",
})
#: sample-derived keys that cannot be recombined from two summaries;
#: ``mean`` is recomputed from sum/count where possible
_MERGE_DERIVED_KEYS = frozenset({"mean", "median", "p90", "p99", "p999"})


def merge_instrument_images(base: Any, other: Any) -> Any:
    """Merge two instrument snapshot images of the same instrument.

    Integers (counters) add. Dict images merge field-wise: additive keys
    sum, ``min``/``max`` take the watermark union, ``value`` is
    last-writer-wins (merge in task order for determinism), and
    percentile keys are dropped (``mean`` is recomputed from ``sum`` and
    ``count`` when both survive). ``base`` may be ``None`` to seed the
    fold.
    """
    if base is None:
        return other if not isinstance(other, dict) else dict(other)
    if isinstance(base, (int, float)) and isinstance(other, (int, float)):
        return base + other
    if not isinstance(base, dict) or not isinstance(other, dict):
        raise TypeError(
            f"cannot merge instrument images {type(base).__name__} "
            f"and {type(other).__name__}"
        )
    merged: Dict[str, Any] = {}
    for key in sorted(set(base) | set(other)):
        if key in _MERGE_DERIVED_KEYS:
            continue
        a, b = base.get(key), other.get(key)
        if a is None:
            merged[key] = b
        elif b is None:
            merged[key] = a
        elif key in _MERGE_ADD_KEYS:
            merged[key] = a + b
        elif key == "min":
            merged[key] = min(a, b)
        elif key == "max":
            merged[key] = max(a, b)
        elif key == "value" or a != b:
            merged[key] = b
        else:
            merged[key] = a
    if merged.get("count") and "sum" in merged:
        merged["mean"] = merged["sum"] / merged["count"]
    return merged


def merge_metric_snapshots(
    images: Sequence[Dict[str, Any]],
) -> Dict[str, Any]:
    """Fold a sequence of ``MetricRegistry.snapshot()`` images into one.

    A single-element sequence passes through untouched (full fidelity,
    percentiles included); two or more merge per instrument name under
    :func:`merge_instrument_images`. The fold runs in sequence order, so
    callers that feed task-ordered images get a deterministic result
    regardless of which process produced each image.
    """
    if len(images) == 1:
        return dict(sorted(images[0].items()))
    merged: Dict[str, Any] = {}
    for image in images:
        for name, snap in image.items():
            if name in merged:
                merged[name] = merge_instrument_images(merged[name], snap)
            else:
                merged[name] = snap if not isinstance(snap, dict) else dict(snap)
    return dict(sorted(merged.items()))


class MergedImage(_Instrument):
    """An instrument holding a merged snapshot image from foreign
    registries — the receiving end of cross-process aggregation for
    families whose live state (samples) did not travel with the image."""

    kind = "merged"

    def __init__(
        self, name: str, image: Optional[Dict[str, Any]] = None,
        deterministic: bool = True,
    ) -> None:
        super().__init__(name, deterministic)
        self.image: Optional[Dict[str, Any]] = (
            dict(image) if image is not None else None
        )
        self.sources = 1 if image is not None else 0

    def merge(self, image: Dict[str, Any]) -> None:
        self.image = merge_instrument_images(self.image, image)
        self.sources += 1

    def snapshot(self) -> Dict[str, Any]:
        return dict(self.image or {})


class MetricRegistry:
    """Central, name-keyed store of every instrument of one system.

    ``get-or-create`` semantics: asking twice for the same name returns
    the same instrument; asking for an existing name with a different
    instrument family is a programming error and raises.
    """

    def __init__(self) -> None:
        self._instruments: Dict[str, _Instrument] = {}

    def _get_or_create(self, name: str, factory, expected: type) -> Any:
        instrument = self._instruments.get(name)
        if instrument is None:
            instrument = factory()
            self._instruments[name] = instrument
        elif not isinstance(instrument, expected):
            raise TypeError(
                f"metric {name!r} already registered as {instrument.kind}, "
                f"not {expected.kind}"
            )
        return instrument

    def counter(self, name: str, deterministic: bool = True) -> Counter:
        return self._get_or_create(
            name, lambda: Counter(name, deterministic), Counter
        )

    def gauge(self, name: str, deterministic: bool = True) -> Gauge:
        return self._get_or_create(name, lambda: Gauge(name, deterministic), Gauge)

    def histogram(
        self, name: str, deterministic: bool = True, max_samples: int = 200_000
    ) -> Histogram:
        return self._get_or_create(
            name, lambda: Histogram(name, deterministic, max_samples), Histogram
        )

    def latency(self, name: str, deterministic: bool = True) -> LatencyTracker:
        return self._get_or_create(
            name, lambda: LatencyTracker(name, deterministic), LatencyTracker
        )

    def intervals(
        self, name: str, interval_ms: float = 1000.0, deterministic: bool = True
    ) -> IntervalCounter:
        return self._get_or_create(
            name, lambda: IntervalCounter(interval_ms, name, deterministic),
            IntervalCounter,
        )

    def register(self, instrument: _Instrument) -> _Instrument:
        """Adopt an externally created instrument under its own name."""
        existing = self._instruments.get(instrument.name)
        if existing is None:
            self._instruments[instrument.name] = instrument
            return instrument
        return existing

    def merge_snapshot(self, snapshot: Dict[str, Any]) -> None:
        """Fold a foreign registry's ``snapshot()`` image into this one.

        Counters (integer images) accumulate into live :class:`Counter`
        instruments; gauge images merge watermark-aware into live
        :class:`Gauge` instruments; every other family lands in a
        :class:`MergedImage` (their sample state did not travel with the
        image, so the merged summary is the honest representation). This
        is the aggregation primitive the parallel campaign runner uses to
        combine per-worker observability.
        """
        for name in sorted(snapshot):
            image = snapshot[name]
            if image is None:
                continue
            if isinstance(image, (int, float)) and not isinstance(image, bool):
                self.counter(name).inc(image)
            elif isinstance(image, dict) and set(image) == {
                "value", "min", "max"
            }:
                gauge = self.gauge(name)
                gauge.set(image["min"])
                gauge.set(image["max"])
                gauge.set(image["value"])
            else:
                merged = self._get_or_create(
                    name, lambda: MergedImage(name), MergedImage
                )
                merged.merge(image)

    def names(self) -> List[str]:
        return sorted(self._instruments)

    def get(self, name: str) -> Optional[_Instrument]:
        return self._instruments.get(name)

    def snapshot(self, deterministic_only: bool = False) -> Dict[str, Any]:
        """JSON-serializable image of every instrument, sorted by name.

        ``deterministic_only`` excludes wall-clock instruments so the
        result is byte-identical across runs of the same seed.
        """
        return {
            name: instrument.snapshot()
            for name, instrument in sorted(self._instruments.items())
            if instrument.deterministic or not deterministic_only
        }
