"""``repro.obs`` — the unified observability layer.

Every measurement in the reproduction flows through this package: typed
**counters/gauges/histograms** in a central :class:`MetricRegistry`,
hierarchical **spans** (wall-clock + sim-clock timing with parent/child
nesting), a bounded structured **event log** (:class:`EventLog`), and
keyed **latency trackers** / **interval counters**.

The entry point is :class:`Observability` — one instance per deployment
(``deployment.obs``) owns the registry, the event log and the span stack.
Components accept an ``obs`` handle; when none is given they fall back to
:data:`NULL_OBS`, a no-op recorder whose instruments swallow every call,
so instrumentation has zero cost in un-observed runs.

Quickstart::

    from repro.obs import Observability

    obs = Observability(now_fn=lambda: simulator.now)
    requests = obs.counter("server.requests")
    with obs.span("handle-request"):
        requests.inc()
        obs.event("server", "request-done", status=200)
    print(obs.snapshot())
"""

from .events import (
    Event,
    EventLog,
    NullEventLog,
    # components
    COMP_CAMPAIGN,
    COMP_CHAOS,
    COMP_OVERLAY,
    COMP_RECOVERY_CONTROLLER,
    COMP_RECOVERY_SCHEDULER,
    # event kinds
    EV_CHECKPOINT_STABLE,
    EV_COMMAND_TO_FIELD,
    EV_COMPROMISED,
    EV_CONTROL_DECISION,
    EV_CONTROL_FALLBACK,
    EV_EQUIVOCATION,
    EV_EVICTED,
    EV_FAULT_SCHEDULED,
    EV_NEW_VIEW,
    EV_OVERLAY_LINK_DEGRADED,
    EV_OVERLAY_LINK_DOWN,
    EV_OVERLAY_LINK_SUPPRESSED,
    EV_OVERLAY_LINK_UP,
    EV_OVERLAY_PARTITION,
    EV_OVERLAY_REROUTE,
    EV_PBFT_CHECKPOINT,
    EV_PBFT_NEW_VIEW,
    EV_PBFT_TIMEOUT,
    EV_PBFT_VIEW_CHANGE,
    EV_RECOVERY_DONE,
    EV_RECOVERY_START,
    EV_REJUVENATE_DEFERRED,
    EV_REJUVENATE_DONE,
    EV_REJUVENATE_START,
    EV_SUSPECT,
    EV_VIEW_CHANGE_START,
)
from .instruments import (
    Counter,
    Gauge,
    Histogram,
    IntervalCounter,
    LatencyStats,
    LatencyTracker,
    MergedImage,
    MetricRegistry,
    merge_instrument_images,
    merge_metric_snapshots,
)
from .recorder import (
    NULL_OBS,
    NullObservability,
    Observability,
    merge_obs_snapshots,
    resolve_obs,
)
from .spans import Span, SpanRecord, SpanRecorder

__all__ = [
    "Observability",
    "NullObservability",
    "NULL_OBS",
    "resolve_obs",
    "MetricRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "LatencyStats",
    "LatencyTracker",
    "IntervalCounter",
    "MergedImage",
    "merge_instrument_images",
    "merge_metric_snapshots",
    "merge_obs_snapshots",
    "Event",
    "EventLog",
    "NullEventLog",
    "Span",
    "SpanRecord",
    "SpanRecorder",
    "COMP_CAMPAIGN",
    "COMP_CHAOS",
    "COMP_OVERLAY",
    "COMP_RECOVERY_CONTROLLER",
    "COMP_RECOVERY_SCHEDULER",
    "EV_CHECKPOINT_STABLE",
    "EV_COMMAND_TO_FIELD",
    "EV_COMPROMISED",
    "EV_CONTROL_DECISION",
    "EV_CONTROL_FALLBACK",
    "EV_EQUIVOCATION",
    "EV_EVICTED",
    "EV_FAULT_SCHEDULED",
    "EV_NEW_VIEW",
    "EV_OVERLAY_LINK_DEGRADED",
    "EV_OVERLAY_LINK_DOWN",
    "EV_OVERLAY_LINK_SUPPRESSED",
    "EV_OVERLAY_LINK_UP",
    "EV_OVERLAY_PARTITION",
    "EV_OVERLAY_REROUTE",
    "EV_PBFT_CHECKPOINT",
    "EV_PBFT_NEW_VIEW",
    "EV_PBFT_TIMEOUT",
    "EV_PBFT_VIEW_CHANGE",
    "EV_RECOVERY_DONE",
    "EV_RECOVERY_START",
    "EV_REJUVENATE_DEFERRED",
    "EV_REJUVENATE_DONE",
    "EV_REJUVENATE_START",
    "EV_SUSPECT",
    "EV_VIEW_CHANGE_START",
]
