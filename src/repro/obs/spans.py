"""Hierarchical spans: timed regions on both the wall clock and sim clock.

A span measures one named region of work. Spans nest — entering a span
while another is open makes it a child, and the recorder tracks the full
ancestry path (``"chaos.run/replica.dispatch"``). Each span captures two
durations:

* **wall time** (``time.perf_counter``) — where the *host* spends time;
  the signal perf PRs optimise against. Inherently nondeterministic, so
  wall aggregates are registered ``deterministic=False`` and excluded
  from deterministic snapshots.
* **sim time** (the deployment's virtual clock) — where *simulated* time
  goes; deterministic for a given seed.

Aggregation is per-path into the owning :class:`~repro.obs.instruments.
MetricRegistry` (``span.<path>.wall_ms`` / ``span.<path>.sim_ms``
histograms), so span data appears in the same snapshot as every other
metric. Individual :class:`SpanRecord` objects are retained up to a
bound for fine-grained inspection in tests.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

__all__ = ["Span", "SpanRecord", "SpanRecorder"]


@dataclass
class SpanRecord:
    """One completed (or open) span instance."""

    name: str
    path: str
    depth: int
    start_wall: float
    start_sim: float
    end_wall: Optional[float] = None
    end_sim: Optional[float] = None
    details: Dict[str, Any] = field(default_factory=dict)

    @property
    def wall_ms(self) -> float:
        if self.end_wall is None:
            return 0.0
        return (self.end_wall - self.start_wall) * 1000.0

    @property
    def sim_ms(self) -> float:
        if self.end_sim is None:
            return 0.0
        return self.end_sim - self.start_sim


class Span:
    """Context manager handle for one open span."""

    __slots__ = ("_recorder", "record")

    def __init__(self, recorder: "SpanRecorder", record: SpanRecord) -> None:
        self._recorder = recorder
        self.record = record

    def annotate(self, **details: Any) -> "Span":
        self.record.details.update(details)
        return self

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self._recorder._finish(self)


class _NullSpan:
    """Reusable no-op span for disabled observability."""

    __slots__ = ()

    def annotate(self, **details: Any) -> "_NullSpan":
        return self

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


NULL_SPAN = _NullSpan()


class SpanRecorder:
    """Tracks the open-span stack and aggregates completed spans.

    ``sim_now_fn`` reads the virtual clock; ``wall_now_fn`` defaults to
    ``time.perf_counter``. ``registry`` (optional) receives per-path
    wall/sim histograms so spans share the metric snapshot.
    """

    def __init__(
        self,
        sim_now_fn: Optional[Callable[[], float]] = None,
        wall_now_fn: Optional[Callable[[], float]] = None,
        registry=None,
        max_records: int = 10_000,
    ) -> None:
        self.sim_now_fn = sim_now_fn or (lambda: 0.0)
        self.wall_now_fn = wall_now_fn or time.perf_counter
        self.registry = registry
        self.max_records = max_records
        self.records: List[SpanRecord] = []
        self.dropped = 0
        self._stack: List[SpanRecord] = []

    def start(self, name: str, **details: Any) -> Span:
        parent = self._stack[-1] if self._stack else None
        path = f"{parent.path}/{name}" if parent is not None else name
        record = SpanRecord(
            name=name,
            path=path,
            depth=len(self._stack),
            start_wall=self.wall_now_fn(),
            start_sim=self.sim_now_fn(),
            details=dict(details),
        )
        self._stack.append(record)
        return Span(self, record)

    def _finish(self, span: Span) -> None:
        record = span.record
        record.end_wall = self.wall_now_fn()
        record.end_sim = self.sim_now_fn()
        # Tolerate out-of-order exits (exceptions unwinding): pop back to
        # this record if it is on the stack.
        if record in self._stack:
            while self._stack and self._stack[-1] is not record:
                self._stack.pop()
            if self._stack:
                self._stack.pop()
        if len(self.records) < self.max_records:
            self.records.append(record)
        else:
            self.dropped += 1
        if self.registry is not None:
            self.registry.histogram(
                f"span.{record.path}.wall_ms", deterministic=False
            ).observe(record.wall_ms)
            self.registry.histogram(
                f"span.{record.path}.sim_ms"
            ).observe(record.sim_ms)

    @property
    def depth(self) -> int:
        return len(self._stack)

    def current(self) -> Optional[SpanRecord]:
        return self._stack[-1] if self._stack else None

    def by_path(self, path: str) -> List[SpanRecord]:
        return [record for record in self.records if record.path == path]

    def clear(self) -> None:
        self.records.clear()
        self._stack.clear()
        self.dropped = 0
