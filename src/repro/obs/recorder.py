"""The :class:`Observability` handle — one per deployment — and its no-op twin.

``Observability`` bundles the three measurement surfaces behind a single
object components can share:

* a :class:`~repro.obs.instruments.MetricRegistry` of typed instruments,
* a structured :class:`~repro.obs.events.EventLog`,
* a :class:`~repro.obs.spans.SpanRecorder` for nested wall/sim timing.

Components never construct their own; they accept an ``obs`` parameter
and call :func:`resolve_obs` which falls back to :data:`NULL_OBS`, a
shared :class:`NullObservability` whose instruments swallow every call.
Hot paths additionally guard optional work (wall-clock reads, span
creation) behind ``obs.enabled`` so disabled runs pay only an attribute
test.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from .events import EventLog, NullEventLog
from .instruments import (
    Counter,
    Gauge,
    Histogram,
    IntervalCounter,
    LatencyStats,
    LatencyTracker,
    MetricRegistry,
    merge_metric_snapshots,
)
from .spans import NULL_SPAN, Span, SpanRecorder

__all__ = [
    "Observability",
    "NullObservability",
    "NULL_OBS",
    "merge_obs_snapshots",
    "resolve_obs",
]


def merge_obs_snapshots(
    images: Sequence[Tuple[str, Dict[str, Any]]],
) -> Dict[str, Any]:
    """Merge per-task ``Observability.snapshot()`` images into one.

    ``images`` is a task-ordered sequence of ``(task_id, image)`` pairs —
    the order fixes every last-writer-wins merge rule, so the result is
    deterministic regardless of which worker produced which image.
    Metrics merge under :func:`merge_metric_snapshots`; event-log
    summaries concatenate (counts and per-kind totals add) with a
    ``by_task`` breakdown keyed by task id so per-worker trace volume
    stays attributable after aggregation.
    """
    metrics = merge_metric_snapshots(
        [image.get("metrics", {}) for _, image in images]
    )
    kinds: Dict[str, int] = {}
    recorded = dropped = 0
    by_task: Dict[str, int] = {}
    for task_id, image in images:
        events = image.get("events", {})
        recorded += events.get("recorded", 0)
        dropped += events.get("dropped", 0)
        by_task[task_id] = events.get("recorded", 0)
        for kind, count in events.get("kinds", {}).items():
            kinds[kind] = kinds.get(kind, 0) + count
    return {
        "metrics": metrics,
        "events": {
            "recorded": recorded,
            "dropped": dropped,
            "kinds": dict(sorted(kinds.items())),
            "by_task": by_task,
        },
    }


class Observability:
    """Owns one system's registry, event log and span recorder.

    ``now_fn`` reads the system's (virtual) clock and stamps events and
    span sim-times. Pass ``log=`` to adopt an existing event log (this is
    how a deployment's ``trace`` attribute and its ``obs`` handle share
    one log); otherwise a fresh :class:`EventLog` is created.
    """

    enabled = True

    def __init__(
        self,
        now_fn: Optional[Callable[[], float]] = None,
        log: Optional[EventLog] = None,
        max_events: int = 200_000,
        wall_now_fn: Optional[Callable[[], float]] = None,
    ) -> None:
        if now_fn is None and log is not None:
            now_fn = log.now_fn
        self.now_fn = now_fn or (lambda: 0.0)
        self.registry = MetricRegistry()
        self.log = log if log is not None else EventLog(self.now_fn, max_events)
        self.spans = SpanRecorder(
            sim_now_fn=self.now_fn,
            wall_now_fn=wall_now_fn,
            registry=self.registry,
        )

    # -- instruments (get-or-create, delegated to the registry) --------
    def counter(self, name: str, deterministic: bool = True) -> Counter:
        return self.registry.counter(name, deterministic)

    def gauge(self, name: str, deterministic: bool = True) -> Gauge:
        return self.registry.gauge(name, deterministic)

    def histogram(
        self, name: str, deterministic: bool = True, max_samples: int = 200_000
    ) -> Histogram:
        return self.registry.histogram(name, deterministic, max_samples)

    def latency(self, name: str, deterministic: bool = True) -> LatencyTracker:
        return self.registry.latency(name, deterministic)

    def intervals(
        self, name: str, interval_ms: float = 1000.0, deterministic: bool = True
    ) -> IntervalCounter:
        return self.registry.intervals(name, interval_ms, deterministic)

    # -- events --------------------------------------------------------
    def event(self, component: str, kind: str, **details: Any) -> None:
        self.log.event(component, kind, **details)

    # -- spans ---------------------------------------------------------
    def span(self, name: str, **details: Any) -> Span:
        return self.spans.start(name, **details)

    # -- snapshots -----------------------------------------------------
    def snapshot(self, deterministic_only: bool = False) -> Dict[str, Any]:
        """JSON-serializable image of metrics plus event-log summary."""
        return {
            "metrics": self.registry.snapshot(deterministic_only),
            "events": {
                "recorded": len(self.log),
                "dropped": self.log.dropped,
                "kinds": self.log.kind_counts(),
            },
        }

    @classmethod
    def for_trace(cls, trace: EventLog) -> "Observability":
        """Observability wrapper sharing ``trace`` as its event log.

        Cached on the trace object so every component handed the same
        legacy ``trace=`` ends up on the same registry.
        """
        cached = getattr(trace, "_obs", None)
        if cached is None:
            cached = cls(log=trace)
            trace._obs = cached
        return cached


class _NullInstrument:
    """Shared no-op instrument: every mutator is a pass, every reader
    returns an empty default. One singleton per family serves all
    callers of :data:`NULL_OBS`."""

    __slots__ = ()
    name = "null"
    deterministic = True

    def snapshot(self) -> Any:
        return None


class _NullCounter(_NullInstrument):
    kind = "counter"
    value = 0

    def inc(self, amount: int = 1) -> None:
        pass

    def snapshot(self) -> int:
        return 0


class _NullGauge(_NullInstrument):
    kind = "gauge"
    value = 0.0
    minimum = None
    maximum = None

    def set(self, value: float) -> None:
        pass


class _NullHistogram(_NullInstrument):
    kind = "histogram"
    samples: Tuple[float, ...] = ()
    count = 0
    total = 0.0
    overflowed = 0
    mean = 0.0

    def observe(self, value: float) -> None:
        pass

    def stats(self) -> LatencyStats:
        return LatencyStats.from_samples(())


class _NullLatency(_NullInstrument):
    kind = "latency"
    samples: Tuple[Tuple[float, float], ...] = ()
    duplicates = 0
    outstanding = 0

    def submitted(self, key, at: float) -> None:
        pass

    def acknowledged(self, key, at: float) -> None:
        return None

    def latencies(self, since: float = 0.0, until: Optional[float] = None) -> List[float]:
        return []

    def stats(self, since: float = 0.0, until: Optional[float] = None) -> LatencyStats:
        return LatencyStats.from_samples(())

    def cdf(self, points: int = 100) -> List[Tuple[float, float]]:
        return []

    def cdf_at_marks(
        self, marks: Sequence[float], since: float = 0.0,
        until: Optional[float] = None,
    ) -> List[float]:
        return [0.0 for _ in marks]

    def timeline(self, bucket_ms: float) -> List[Tuple[float, float, int]]:
        return []


class _NullIntervals(_NullInstrument):
    kind = "intervals"
    interval_ms = 1000.0

    def record(self, at: float, count: int = 1) -> None:
        pass

    def series(self, start_ms: float, end_ms: float) -> List[Tuple[float, int]]:
        return []

    def availability(self, start_ms: float, end_ms: float, minimum: int = 1) -> float:
        return 0.0


_NULL_COUNTER = _NullCounter()
_NULL_GAUGE = _NullGauge()
_NULL_HISTOGRAM = _NullHistogram()
_NULL_LATENCY = _NullLatency()
_NULL_INTERVALS = _NullIntervals()


class _NullRegistry:
    """Registry facade returning the shared null instruments."""

    __slots__ = ()

    def counter(self, name: str, deterministic: bool = True) -> _NullCounter:
        return _NULL_COUNTER

    def gauge(self, name: str, deterministic: bool = True) -> _NullGauge:
        return _NULL_GAUGE

    def histogram(
        self, name: str, deterministic: bool = True, max_samples: int = 200_000
    ) -> _NullHistogram:
        return _NULL_HISTOGRAM

    def latency(self, name: str, deterministic: bool = True) -> _NullLatency:
        return _NULL_LATENCY

    def intervals(
        self, name: str, interval_ms: float = 1000.0, deterministic: bool = True
    ) -> _NullIntervals:
        return _NULL_INTERVALS

    def register(self, instrument):
        return instrument

    def names(self) -> List[str]:
        return []

    def get(self, name: str) -> None:
        return None

    def snapshot(self, deterministic_only: bool = False) -> Dict[str, Any]:
        return {}


class _NullSpanRecorder:
    """Span recorder facade: never times, never stores."""

    __slots__ = ()
    records: Tuple = ()
    dropped = 0
    depth = 0

    def start(self, name: str, **details: Any):
        return NULL_SPAN

    def current(self) -> None:
        return None

    def by_path(self, path: str) -> List:
        return []

    def clear(self) -> None:
        pass


class NullObservability(Observability):
    """Disabled observability: every call is a no-op.

    A single shared instance (:data:`NULL_OBS`) serves every
    un-observed component; nothing is allocated per call, so the hot
    path cost of instrumentation collapses to an ``obs.enabled`` test
    (or a no-op method call where timing isn't involved).
    """

    enabled = False

    def __init__(self) -> None:
        self.now_fn = lambda: 0.0
        self.registry = _NullRegistry()
        self.log = NullEventLog()
        self.spans = _NullSpanRecorder()

    def event(self, component: str, kind: str, **details: Any) -> None:
        pass

    def span(self, name: str, **details: Any):
        return NULL_SPAN

    def snapshot(self, deterministic_only: bool = False) -> Dict[str, Any]:
        return {"metrics": {}, "events": {"recorded": 0, "dropped": 0, "kinds": {}}}


#: Shared no-op recorder — the default for every component not handed an
#: explicit ``obs``.
NULL_OBS = NullObservability()


def resolve_obs(
    obs: Optional[Observability] = None, trace: Optional[EventLog] = None
) -> Observability:
    """Resolve a component's ``obs`` parameter.

    Priority: an explicit ``obs`` wins; else a legacy ``trace=`` argument
    is wrapped via :meth:`Observability.for_trace` (all components
    sharing that trace share one registry); else :data:`NULL_OBS`.
    """
    if obs is not None:
        return obs
    if trace is not None and not isinstance(trace, NullEventLog):
        return Observability.for_trace(trace)
    return NULL_OBS
