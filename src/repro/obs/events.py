"""Structured event log plus the canonical event-kind vocabulary.

An :class:`EventLog` is a bounded, in-memory structured log keyed by a
caller-supplied clock. Components emit events (``log.event("prime",
EV_NEW_VIEW, view=3)``); tests and benchmarks query them to assert
protocol behaviour without parsing text. In simulations, bind the clock
with ``EventLog(now_fn=lambda: simulator.now)``.

The module-level constants below replace the ad-hoc string kinds that
used to be scattered across ``simnet``, ``prime``, ``pbft``, ``core`` and
``chaos`` call sites — one spelling, importable, greppable. The string
values are unchanged, so existing queries by literal string keep working.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional

__all__ = [
    "Event",
    "EventLog",
    "NullEventLog",
    "COMP_CAMPAIGN",
    "COMP_CHAOS",
    "COMP_OVERLAY",
    "COMP_RECOVERY_CONTROLLER",
    "COMP_RECOVERY_SCHEDULER",
    "EV_CHECKPOINT_STABLE",
    "EV_CONTROL_DECISION",
    "EV_CONTROL_FALLBACK",
    "EV_COMMAND_TO_FIELD",
    "EV_COMPROMISED",
    "EV_EQUIVOCATION",
    "EV_EVICTED",
    "EV_FAULT_SCHEDULED",
    "EV_NEW_VIEW",
    "EV_OVERLAY_LINK_DEGRADED",
    "EV_OVERLAY_LINK_DOWN",
    "EV_OVERLAY_LINK_SUPPRESSED",
    "EV_OVERLAY_LINK_UP",
    "EV_OVERLAY_PARTITION",
    "EV_OVERLAY_REROUTE",
    "EV_PBFT_CHECKPOINT",
    "EV_PBFT_NEW_VIEW",
    "EV_PBFT_TIMEOUT",
    "EV_PBFT_VIEW_CHANGE",
    "EV_RECOVERY_DONE",
    "EV_RECOVERY_START",
    "EV_REJUVENATE_DEFERRED",
    "EV_REJUVENATE_DONE",
    "EV_REJUVENATE_START",
    "EV_SUSPECT",
    "EV_VIEW_CHANGE_START",
]

# ----------------------------------------------------------------------
# Canonical components (emitters that are not a named process)
# ----------------------------------------------------------------------
COMP_RECOVERY_SCHEDULER = "recovery-scheduler"
COMP_RECOVERY_CONTROLLER = "recovery-controller"
COMP_CAMPAIGN = "campaign"
COMP_CHAOS = "chaos"
COMP_OVERLAY = "overlay"

# ----------------------------------------------------------------------
# Prime protocol events
# ----------------------------------------------------------------------
EV_RECOVERY_START = "recovery-start"
EV_RECOVERY_DONE = "recovery-done"
EV_EQUIVOCATION = "equivocation"
EV_CHECKPOINT_STABLE = "checkpoint-stable"
EV_SUSPECT = "suspect"
EV_VIEW_CHANGE_START = "view-change-start"
EV_NEW_VIEW = "new-view"

# ----------------------------------------------------------------------
# PBFT baseline events
# ----------------------------------------------------------------------
EV_PBFT_TIMEOUT = "pbft-timeout"
EV_PBFT_VIEW_CHANGE = "pbft-view-change"
EV_PBFT_NEW_VIEW = "pbft-new-view"
EV_PBFT_CHECKPOINT = "pbft-checkpoint"

# ----------------------------------------------------------------------
# Proactive recovery scheduler events
# ----------------------------------------------------------------------
EV_REJUVENATE_DEFERRED = "rejuvenate-deferred"
EV_REJUVENATE_START = "rejuvenate-start"
EV_REJUVENATE_DONE = "rejuvenate-done"

# ----------------------------------------------------------------------
# Adaptive recovery controller events (repro.control, feedback strategy)
# ----------------------------------------------------------------------
EV_CONTROL_DECISION = "control-decision"
EV_CONTROL_FALLBACK = "control-fallback"

# ----------------------------------------------------------------------
# Endpoint / field events
# ----------------------------------------------------------------------
EV_COMMAND_TO_FIELD = "command-to-field"

# ----------------------------------------------------------------------
# Red-team campaign events
# ----------------------------------------------------------------------
EV_COMPROMISED = "compromised"
EV_EVICTED = "evicted"

# ----------------------------------------------------------------------
# Chaos engine events
# ----------------------------------------------------------------------
EV_FAULT_SCHEDULED = "fault-scheduled"

# ----------------------------------------------------------------------
# Overlay control-plane events (self-healing Spines)
# ----------------------------------------------------------------------
EV_OVERLAY_LINK_DOWN = "overlay-link-down"
EV_OVERLAY_LINK_UP = "overlay-link-up"
EV_OVERLAY_LINK_DEGRADED = "overlay-link-degraded"
EV_OVERLAY_LINK_SUPPRESSED = "overlay-link-suppressed"
EV_OVERLAY_REROUTE = "overlay-reroute"
EV_OVERLAY_PARTITION = "overlay-partition"


@dataclass(frozen=True)
class Event:
    """One structured event record."""

    time: float
    component: str
    kind: str
    details: Dict[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:  # pragma: no cover - debug aid
        detail = " ".join(f"{k}={v}" for k, v in self.details.items())
        return f"[t={self.time:10.1f}ms] {self.component:16s} {self.kind} {detail}"


class EventLog:
    """Bounded structured event log shared by one system's components.

    ``now_fn`` supplies the timestamp for each emission (virtual time in
    simulations). Past ``max_events`` the log stops storing and counts the
    overflow in :attr:`dropped` — truncation is never silent; reports
    surface the counter.
    """

    def __init__(
        self,
        now_fn: Optional[Callable[[], float]] = None,
        max_events: int = 200_000,
    ) -> None:
        self.now_fn = now_fn or (lambda: 0.0)
        self.max_events = max_events
        self._events: List[Event] = []
        #: events discarded because the log was full (visible in reports)
        self.dropped = 0

    def event(self, component: str, kind: str, **details: Any) -> None:
        """Record one event at the current clock reading."""
        if len(self._events) >= self.max_events:
            self.dropped += 1
            return
        self._events.append(Event(self.now_fn(), component, kind, details))

    def events(
        self,
        component: Optional[str] = None,
        kind: Optional[str] = None,
        since: float = 0.0,
        until: Optional[float] = None,
    ) -> List[Event]:
        """Query events, optionally filtered by component/kind/time window."""
        out = []
        for ev in self._events:
            if component is not None and ev.component != component:
                continue
            if kind is not None and ev.kind != kind:
                continue
            if ev.time < since:
                continue
            if until is not None and ev.time > until:
                continue
            out.append(ev)
        return out

    def count(self, component: Optional[str] = None, kind: Optional[str] = None) -> int:
        return len(self.events(component, kind))

    def kind_counts(self) -> Dict[str, int]:
        """Total recorded events per kind (sorted), for report summaries."""
        counts: Dict[str, int] = {}
        for ev in self._events:
            counts[ev.kind] = counts.get(ev.kind, 0) + 1
        return dict(sorted(counts.items()))

    def clear(self) -> None:
        self._events.clear()
        self.dropped = 0

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterable[Event]:
        return iter(self._events)


class NullEventLog(EventLog):
    """Event log that records nothing (the disabled-observability path)."""

    def __init__(self) -> None:
        super().__init__(max_events=0)

    def event(self, component: str, kind: str, **details: Any) -> None:
        pass  # no dropped accounting either: disabled means zero work
