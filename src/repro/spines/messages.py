"""Overlay wire messages."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

__all__ = [
    "OverlayData",
    "OverlayIngress",
    "OverlayForward",
    "OverlayDeliver",
    "OverlayHello",
]


# The four data-path wrappers below are created for every application
# message crossing the overlay, which puts their constructors on the
# simulation hot path. They are treated as immutable after construction
# (the crypto layer memoizes MACs and encodings by object identity) but
# are deliberately *not* ``frozen=True``: a frozen dataclass pays an
# ``object.__setattr__`` call per field on construction, several times
# the cost of a plain attribute store. ``slots=True`` keeps instances
# compact and attribute access fast. OverlayHello stays frozen — it is
# control-plane rate, not data rate.


@dataclass(slots=True)
class OverlayData:
    """An end-to-end overlay datagram.

    ``origin``/``dest`` are endpoint (not daemon) names; ``seq`` is a
    per-origin sequence number used for flood deduplication.
    """

    origin: str
    dest: str
    seq: int
    payload: Any
    size_bytes: int = 256
    priority: int = 0
    #: virtual send time at the origin endpoint (for end-to-end overlay
    #: latency profiling; 0.0 when the sender is not instrumented)
    sent_at: float = 0.0


@dataclass(slots=True)
class OverlayIngress:
    """Endpoint -> home daemon: please route this datagram."""

    data: OverlayData


@dataclass(slots=True)
class OverlayForward:
    """Daemon -> neighbor daemon, authenticated by a per-link MAC."""

    data: OverlayData
    sender: str
    mac: bytes
    #: virtual time this hop's transmission started (per-hop latency
    #: profiling). Not covered by the link MAC — the MAC authenticates
    #: ``data`` only, as in the seed — so tampering cannot forge payloads.
    sent_at: float = 0.0


@dataclass(slots=True)
class OverlayDeliver:
    """Destination daemon -> attached endpoint."""

    data: OverlayData


@dataclass(frozen=True)
class OverlayHello:
    """Daemon -> neighbor daemon keepalive probe (link monitoring).

    Sent on every advertised link when the self-healing control plane is
    enabled. ``sent_at`` lets the receiver estimate one-way link latency;
    the MAC covers ``(sender, seq, sent_at)`` so an external attacker can
    neither forge liveness nor replay a stale latency claim as fresh.
    """

    sender: str
    seq: int
    sent_at: float
    mac: bytes = b""
