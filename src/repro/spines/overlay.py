"""Overlay facade: builds daemons from a topology and attaches endpoints.

The :class:`SpinesOverlay` is what deployment code uses: it instantiates
one :class:`SpinesDaemon` per site, programs the underlying simnet links
from the topology's latencies, and hands each endpoint an
:class:`OverlayStack` — the endpoint-side API (``send``/``unwrap``) that
plays the role of the Spines client library in the real system.

With ``self_healing=True`` the overlay also builds the control plane from
:mod:`repro.spines.monitor`: one :class:`LinkMonitor` per daemon probing
its links with authenticated hellos, reporting to a shared
:class:`OverlayControlPlane` that reroutes around dead/degraded links.
Static overlays (the default) construct none of it and behave exactly as
before.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple

from ..crypto.provider import CryptoProvider, FastCrypto
from ..obs import EventLog, Observability, resolve_obs
from ..simnet import LinkSpec, Network, Process, Simulator
from .daemon import SpinesDaemon
from .messages import OverlayData, OverlayDeliver, OverlayIngress
from .monitor import LinkMonitor, LinkMonitorConfig, OverlayControlPlane
from .routing import make_routing
from .topology import OverlayTopology

__all__ = ["SpinesOverlay", "OverlayStack"]


class OverlayStack:
    """Endpoint-side overlay API (the 'Spines library' linked into apps)."""

    def __init__(self, overlay: "SpinesOverlay", endpoint: Process, site: str) -> None:
        self._overlay = overlay
        self._endpoint = endpoint
        self.site = site
        self._seq = 0
        # send() runs once per outbound app message; resolve the loop
        # invariants here instead of per call
        self.daemon_name = SpinesDaemon.daemon_name(site)
        self._origin = endpoint.name
        self._endpoint_send = endpoint.send
        self._obs_enabled = overlay.obs.enabled
        self._simulator = overlay.simulator

    def send(self, dest_endpoint: str, payload: Any, size_bytes: int = 256,
             priority: int = 0) -> bool:
        """Send ``payload`` to another overlay endpoint by name."""
        self._seq += 1
        data = OverlayData(
            self._origin,
            dest_endpoint,
            self._seq,
            payload,
            size_bytes,
            priority,
            self._simulator.now if self._obs_enabled else 0.0,
        )
        return self._endpoint_send(self.daemon_name, OverlayIngress(data),
                                   size_bytes=size_bytes)

    @staticmethod
    def unwrap(message: Any) -> Optional[Tuple[str, Any]]:
        """If ``message`` is an overlay delivery, return (origin, payload)."""
        if isinstance(message, OverlayDeliver):
            return message.data.origin, message.data.payload
        return None


class SpinesOverlay:
    """All daemons of one overlay network plus endpoint attachment state."""

    def __init__(
        self,
        simulator: Simulator,
        network: Network,
        topology: OverlayTopology,
        mode: str = "flooding",
        crypto: Optional[CryptoProvider] = None,
        trace: Optional[EventLog] = None,
        link_auth: bool = True,
        fairness: bool = True,
        forward_capacity_per_ms: float = 0.0,
        last_mile_latency_ms: float = 0.1,
        self_healing: bool = False,
        monitor_config: Optional[LinkMonitorConfig] = None,
        max_queue_per_source: int = 0,
        source_rate_per_ms: float = 0.0,
        source_burst: float = 32.0,
        obs: Optional[Observability] = None,
    ) -> None:
        self.simulator = simulator
        self.network = network
        self.topology = topology
        self.mode = mode
        self.crypto = crypto or FastCrypto()
        self.last_mile_latency_ms = last_mile_latency_ms
        self.obs = resolve_obs(obs, trace)
        self.routing = make_routing(mode, topology)
        self.monitor_config = monitor_config or LinkMonitorConfig()
        self.daemons: Dict[str, SpinesDaemon] = {}
        self._endpoint_home: Dict[str, str] = {}
        for site in topology.sites:
            self.daemons[site.name] = SpinesDaemon(
                site.name, simulator, network, self.routing, self.crypto,
                trace=trace, link_auth=link_auth, fairness=fairness,
                forward_capacity_per_ms=forward_capacity_per_ms,
                max_queue_per_source=max_queue_per_source,
                source_rate_per_ms=source_rate_per_ms,
                source_burst=source_burst,
                obs=obs,
            )
        for a, b in topology.graph.edges:
            attrs = topology.link_attributes(a, b)
            spec = LinkSpec(
                latency_ms=attrs.get("latency_ms", 1.0),
                jitter_ms=attrs.get("jitter_ms", 0.0),
                loss=attrs.get("loss", 0.0),
                bandwidth_mbps=attrs.get("bandwidth_mbps", 0.0),
            )
            network.set_link(SpinesDaemon.daemon_name(a), SpinesDaemon.daemon_name(b), spec)
            self.daemons[a].add_neighbor(b)
            self.daemons[b].add_neighbor(a)
        # Daemons share one endpoint-home map so routing can resolve any
        # destination (link-state routing advertises client attachment).
        for daemon in self.daemons.values():
            daemon.endpoint_home = self._endpoint_home
        # Self-healing control plane: shared across daemons (they share the
        # routing instance too, so one rebuild reroutes the whole overlay).
        self.control_plane: Optional[OverlayControlPlane] = None
        if self_healing:
            self.control_plane = OverlayControlPlane(
                simulator, topology, self.routing,
                config=self.monitor_config, obs=self.obs,
            )
            for site_name in sorted(self.daemons):
                daemon = self.daemons[site_name]
                monitor = LinkMonitor(
                    daemon, self.control_plane, self.monitor_config
                )
                daemon.monitor = monitor
                self.control_plane.monitors[site_name] = monitor
                monitor.start()

    def attach(self, endpoint: Process, site_name: str) -> OverlayStack:
        """Attach an endpoint process to its site's daemon."""
        if site_name not in self.daemons:
            raise KeyError(f"unknown site {site_name}")
        if endpoint.name in self._endpoint_home:
            raise ValueError(f"endpoint {endpoint.name} already attached")
        self._endpoint_home[endpoint.name] = site_name
        daemon = self.daemons[site_name]
        daemon.attach_endpoint(endpoint.name)
        spec = LinkSpec(latency_ms=self.last_mile_latency_ms, jitter_ms=0.02)
        self.network.set_link(endpoint.name, daemon.name, spec)
        return OverlayStack(self, endpoint, site_name)

    def endpoint_site(self, endpoint_name: str) -> Optional[str]:
        return self._endpoint_home.get(endpoint_name)

    def daemon(self, site_name: str) -> SpinesDaemon:
        return self.daemons[site_name]

    def total_stats(self) -> Dict[str, int]:
        """Aggregate daemon counters (for overlay-cost reporting)."""
        totals: Dict[str, int] = {}
        for daemon in self.daemons.values():
            for key, value in daemon.stats.items():
                totals[key] = totals.get(key, 0) + value
        return totals
