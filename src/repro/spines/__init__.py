"""Spines: the intrusion-tolerant overlay network (reimplementation).

Public API: :class:`OverlayTopology` + builders, :class:`SpinesOverlay`
(daemon fleet + endpoint attachment), :class:`OverlayStack` (endpoint-side
send/unwrap), routing strategies, the self-healing control plane
(:class:`LinkMonitor` / :class:`OverlayControlPlane`), and the daemon
itself for tests.
"""

from .daemon import SpinesDaemon
from .messages import (
    OverlayData,
    OverlayDeliver,
    OverlayForward,
    OverlayHello,
    OverlayIngress,
)
from .monitor import LinkMonitor, LinkMonitorConfig, OverlayControlPlane
from .overlay import OverlayStack, SpinesOverlay
from .routing import (
    DisjointPathsRouting,
    FloodingRouting,
    RoutingStrategy,
    ShortestPathRouting,
    make_routing,
)
from .topology import (
    OverlayTopology,
    Site,
    continental_topology,
    lan_topology,
    wide_area_topology,
)

__all__ = [
    "SpinesDaemon",
    "OverlayData",
    "OverlayDeliver",
    "OverlayForward",
    "OverlayHello",
    "OverlayIngress",
    "LinkMonitor",
    "LinkMonitorConfig",
    "OverlayControlPlane",
    "OverlayStack",
    "SpinesOverlay",
    "DisjointPathsRouting",
    "FloodingRouting",
    "RoutingStrategy",
    "ShortestPathRouting",
    "make_routing",
    "OverlayTopology",
    "Site",
    "continental_topology",
    "lan_topology",
    "wide_area_topology",
]
