"""Routing strategies for the overlay.

Two modes, matching the paper's discussion:

* ``shortest`` — classical link-state routing: each daemon forwards toward
  the destination site along the latency-weighted shortest path computed
  from the *advertised* topology. A routing attacker (or a DoS that delays
  a link without taking it down) is invisible to these tables, which is
  exactly the weakness the paper's intrusion-tolerant mode addresses.
* ``flooding`` — constrained flooding: every daemon forwards each *new*
  authenticated datagram on all links except the one it arrived on.
  Delivery is guaranteed whenever any correct path exists, at the price of
  bandwidth; per-source fairness (see :mod:`repro.spines.daemon`) keeps a
  flooding attacker from starving honest sources.

All strategies additionally support :meth:`RoutingStrategy.rebuild`: the
self-healing control plane (:mod:`repro.spines.monitor`) hands them an
*observed* topology view with dead links removed and degraded latencies
substituted, and they recompute forwarding state from it — shortest-path
and disjoint-path tables re-route, flooding prunes dead links.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

import networkx as nx

from .topology import OverlayTopology

__all__ = [
    "RoutingStrategy",
    "ShortestPathRouting",
    "FloodingRouting",
    "DisjointPathsRouting",
    "make_routing",
]


class RoutingStrategy:
    """Chooses which neighbour daemons a datagram is forwarded to."""

    name = "abstract"

    def forward_targets(
        self, daemon_site: str, dest_site: str, arrived_from: Optional[str]
    ) -> List[str]:
        """Return neighbour sites the datagram should be forwarded to."""
        raise NotImplementedError

    def rebuild(self, observed: OverlayTopology) -> None:
        """Recompute forwarding state from an observed topology view."""
        raise NotImplementedError


class ShortestPathRouting(RoutingStrategy):
    """Latency-weighted next-hop tables.

    Built from the advertised topology; a self-healing control plane may
    :meth:`rebuild` them from its observed view when links die or degrade.
    """

    name = "shortest"

    def __init__(self, topology: OverlayTopology) -> None:
        self.topology = topology
        self._next_hop: Dict[Tuple[str, str], Optional[str]] = {}
        self._rebuild()

    def _rebuild(self) -> None:
        self._next_hop.clear()
        for source in self.topology.graph.nodes:
            paths = nx.single_source_dijkstra_path(
                self.topology.graph, source, weight="latency_ms"
            )
            for dest, path in paths.items():
                if len(path) >= 2:
                    self._next_hop[(source, dest)] = path[1]
                else:
                    self._next_hop[(source, dest)] = None

    def rebuild(self, observed: OverlayTopology) -> None:
        self.topology = observed
        self._rebuild()

    def forward_targets(
        self, daemon_site: str, dest_site: str, arrived_from: Optional[str]
    ) -> List[str]:
        hop = self._next_hop.get((daemon_site, dest_site))
        return [hop] if hop is not None else []


class FloodingRouting(RoutingStrategy):
    """Constrained flooding: forward on every link except the arrival link."""

    name = "flooding"

    def __init__(self, topology: OverlayTopology) -> None:
        self.topology = topology

    def rebuild(self, observed: OverlayTopology) -> None:
        # flooding has no tables; adopting the observed view prunes dead
        # links from the per-datagram fan-out (saves doomed transmissions)
        self.topology = observed

    def forward_targets(
        self, daemon_site: str, dest_site: str, arrived_from: Optional[str]
    ) -> List[str]:
        return [
            neighbor
            for neighbor in self.topology.neighbors(daemon_site)
            if neighbor != arrived_from
        ]


class DisjointPathsRouting(RoutingStrategy):
    """K node-disjoint-path dissemination (Spines' middle ground).

    Every datagram is forwarded along ``k`` precomputed node-disjoint
    paths between the source and destination sites. This tolerates up to
    ``k - 1`` compromised/failed interior daemons at a fraction of
    flooding's bandwidth cost. Paths are computed from the advertised
    topology (like real dissemination-graph routing, they do not react to
    silent degradation — that remains flooding's advantage).

    Implementation note: forwarding state is per (source site, dest site):
    a daemon forwards to the next hop of every chosen path it lies on.
    Because the daemon-level API does not expose the origin site, the
    per-source plans are merged at build time into one
    ``(daemon, dest) -> targets`` table (a superset — slightly more
    redundancy, never less), so the per-datagram lookup is O(1) instead
    of a scan over all O(sites²) plans.
    """

    name = "disjoint"

    def __init__(self, topology: OverlayTopology, k: int = 2) -> None:
        self.topology = topology
        self.k = k
        #: (src_site, dst_site) -> daemon_site -> [next hops]
        self._plans: Dict[Tuple[str, str], Dict[str, List[str]]] = {}
        #: (daemon_site, dest_site) -> merged next hops across all sources
        self._targets: Dict[Tuple[str, str], Tuple[str, ...]] = {}
        self._build()

    def _build(self) -> None:
        self._plans.clear()
        sites = list(self.topology.graph.nodes)
        for src in sites:
            for dst in sites:
                if src == dst:
                    continue
                paths = self._k_disjoint_paths(src, dst)
                plan: Dict[str, List[str]] = {}
                for path in paths:
                    for hop, nxt in zip(path, path[1:]):
                        plan.setdefault(hop, [])
                        if nxt not in plan[hop]:
                            plan[hop].append(nxt)
                self._plans[(src, dst)] = plan
        self._merge_plans()

    def _merge_plans(self) -> None:
        """Precompute the per-(daemon, dest) union of all source plans.

        Iterates the plans in the same source-major insertion order as the
        former per-datagram scan, so the merged target order (and thus
        forwarding behaviour) is identical.
        """
        merged: Dict[Tuple[str, str], List[str]] = {}
        for (_, dst), plan in self._plans.items():
            for daemon_site, next_hops in plan.items():
                targets = merged.setdefault((daemon_site, dst), [])
                for nxt in next_hops:
                    if nxt not in targets:
                        targets.append(nxt)
        self._targets = {key: tuple(value) for key, value in merged.items()}

    def rebuild(self, observed: OverlayTopology) -> None:
        self.topology = observed
        self._build()

    def _k_disjoint_paths(self, src: str, dst: str) -> List[List[str]]:
        graph = self.topology.graph.copy()
        paths: List[List[str]] = []
        for _ in range(self.k):
            try:
                path = nx.shortest_path(graph, src, dst, weight="latency_ms")
            except nx.NetworkXNoPath:
                break
            paths.append(path)
            # remove interior nodes to force node-disjointness
            graph.remove_nodes_from(path[1:-1])
        return paths

    def forward_targets(
        self, daemon_site: str, dest_site: str, arrived_from: Optional[str]
    ) -> List[str]:
        targets = self._targets.get((daemon_site, dest_site), ())
        return [nxt for nxt in targets if nxt != arrived_from]


def make_routing(mode: str, topology: OverlayTopology, k: int = 2) -> RoutingStrategy:
    """Factory for routing strategies (``shortest``, ``disjoint``, or
    ``flooding``)."""
    if mode == "shortest":
        return ShortestPathRouting(topology)
    if mode == "flooding":
        return FloodingRouting(topology)
    if mode == "disjoint":
        return DisjointPathsRouting(topology, k=k)
    raise ValueError(f"unknown routing mode: {mode}")
