"""Routing strategies for the overlay.

Two modes, matching the paper's discussion:

* ``shortest`` — classical link-state routing: each daemon forwards toward
  the destination site along the latency-weighted shortest path computed
  from the *advertised* topology. A routing attacker (or a DoS that delays
  a link without taking it down) is invisible to these tables, which is
  exactly the weakness the paper's intrusion-tolerant mode addresses.
* ``flooding`` — constrained flooding: every daemon forwards each *new*
  authenticated datagram on all links except the one it arrived on.
  Delivery is guaranteed whenever any correct path exists, at the price of
  bandwidth; per-source fairness (see :mod:`repro.spines.daemon`) keeps a
  flooding attacker from starving honest sources.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

import networkx as nx

from .topology import OverlayTopology

__all__ = [
    "RoutingStrategy",
    "ShortestPathRouting",
    "FloodingRouting",
    "DisjointPathsRouting",
    "make_routing",
]


class RoutingStrategy:
    """Chooses which neighbour daemons a datagram is forwarded to."""

    name = "abstract"

    def forward_targets(
        self, daemon_site: str, dest_site: str, arrived_from: Optional[str]
    ) -> List[str]:
        """Return neighbour sites the datagram should be forwarded to."""
        raise NotImplementedError


class ShortestPathRouting(RoutingStrategy):
    """Latency-weighted next-hop tables over the static advertised topology."""

    name = "shortest"

    def __init__(self, topology: OverlayTopology) -> None:
        self.topology = topology
        self._next_hop: Dict[Tuple[str, str], Optional[str]] = {}
        self._rebuild()

    def _rebuild(self) -> None:
        self._next_hop.clear()
        for source in self.topology.graph.nodes:
            paths = nx.single_source_dijkstra_path(
                self.topology.graph, source, weight="latency_ms"
            )
            for dest, path in paths.items():
                if len(path) >= 2:
                    self._next_hop[(source, dest)] = path[1]
                else:
                    self._next_hop[(source, dest)] = None

    def forward_targets(
        self, daemon_site: str, dest_site: str, arrived_from: Optional[str]
    ) -> List[str]:
        hop = self._next_hop.get((daemon_site, dest_site))
        return [hop] if hop is not None else []


class FloodingRouting(RoutingStrategy):
    """Constrained flooding: forward on every link except the arrival link."""

    name = "flooding"

    def __init__(self, topology: OverlayTopology) -> None:
        self.topology = topology

    def forward_targets(
        self, daemon_site: str, dest_site: str, arrived_from: Optional[str]
    ) -> List[str]:
        return [
            neighbor
            for neighbor in self.topology.neighbors(daemon_site)
            if neighbor != arrived_from
        ]


class DisjointPathsRouting(RoutingStrategy):
    """K node-disjoint-path dissemination (Spines' middle ground).

    Every datagram is forwarded along ``k`` precomputed node-disjoint
    paths between the source and destination sites. This tolerates up to
    ``k - 1`` compromised/failed interior daemons at a fraction of
    flooding's bandwidth cost. Paths are computed from the advertised
    topology (like real dissemination-graph routing, they do not react to
    silent degradation — that remains flooding's advantage).

    Implementation note: forwarding state is per (source site, dest site):
    a daemon forwards to the next hop of every chosen path it lies on.
    """

    name = "disjoint"

    def __init__(self, topology: OverlayTopology, k: int = 2) -> None:
        self.topology = topology
        self.k = k
        #: (src_site, dst_site) -> daemon_site -> [next hops]
        self._plans: Dict[Tuple[str, str], Dict[str, List[str]]] = {}
        self._build()

    def _build(self) -> None:
        sites = list(self.topology.graph.nodes)
        for src in sites:
            for dst in sites:
                if src == dst:
                    continue
                paths = self._k_disjoint_paths(src, dst)
                plan: Dict[str, List[str]] = {}
                for path in paths:
                    for hop, nxt in zip(path, path[1:]):
                        plan.setdefault(hop, [])
                        if nxt not in plan[hop]:
                            plan[hop].append(nxt)
                self._plans[(src, dst)] = plan

    def _k_disjoint_paths(self, src: str, dst: str) -> List[List[str]]:
        graph = self.topology.graph.copy()
        paths: List[List[str]] = []
        for _ in range(self.k):
            try:
                path = nx.shortest_path(graph, src, dst, weight="latency_ms")
            except nx.NetworkXNoPath:
                break
            paths.append(path)
            # remove interior nodes to force node-disjointness
            graph.remove_nodes_from(path[1:-1])
        return paths

    def forward_targets(
        self, daemon_site: str, dest_site: str, arrived_from: Optional[str]
    ) -> List[str]:
        # the plan is keyed by the *origin* site, which the daemon-level
        # API does not expose; merge the plans of all sources through this
        # daemon (a superset — slightly more redundancy, never less)
        targets: List[str] = []
        for (src, dst), plan in self._plans.items():
            if dst != dest_site:
                continue
            for nxt in plan.get(daemon_site, []):
                if nxt != arrived_from and nxt not in targets:
                    targets.append(nxt)
        return targets


def make_routing(mode: str, topology: OverlayTopology, k: int = 2) -> RoutingStrategy:
    """Factory for routing strategies (``shortest``, ``disjoint``, or
    ``flooding``)."""
    if mode == "shortest":
        return ShortestPathRouting(topology)
    if mode == "flooding":
        return FloodingRouting(topology)
    if mode == "disjoint":
        return DisjointPathsRouting(topology, k=k)
    raise ValueError(f"unknown routing mode: {mode}")
