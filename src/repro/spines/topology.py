"""Overlay topologies.

The paper deploys Spines daemons at each site (control centers, data
centers, and client sites) connected by WAN links, and evaluates Spire over
both a LAN and an emulated/real wide-area topology spanning US East-coast
sites. The builders here generate those shapes with representative
latencies; the exact testbed latencies are not public, so values are chosen
to match the paper's reported scale (LAN well under 1 ms, WAN links a few
to ~20 ms one-way).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

import networkx as nx

__all__ = ["Site", "OverlayTopology", "lan_topology", "wide_area_topology", "continental_topology"]


@dataclass(frozen=True)
class Site:
    """A physical site hosting one overlay daemon plus attached endpoints.

    kind: ``control`` (control center — replicas + ability to command field
    devices), ``data`` (data center — replicas only), or ``field`` (client
    site — substations with RTU proxies, or an HMI site).
    """

    name: str
    kind: str = "control"

    def __post_init__(self) -> None:
        if self.kind not in ("control", "data", "field"):
            raise ValueError(f"unknown site kind: {self.kind}")

    @property
    def daemon_name(self) -> str:
        return f"spines:{self.name}"


class OverlayTopology:
    """Sites plus the daemon-to-daemon link graph (latencies in ms)."""

    def __init__(self) -> None:
        self.graph = nx.Graph()
        self._sites: Dict[str, Site] = {}

    # ------------------------------------------------------------------
    def add_site(self, site: Site) -> Site:
        if site.name in self._sites:
            raise ValueError(f"duplicate site {site.name}")
        self._sites[site.name] = site
        self.graph.add_node(site.name)
        return site

    def connect(self, a: str, b: str, latency_ms: float, jitter_ms: float = 0.0,
                loss: float = 0.0, bandwidth_mbps: float = 0.0) -> None:
        """Add a (bidirectional) daemon link between two sites."""
        for name in (a, b):
            if name not in self._sites:
                raise KeyError(f"unknown site {name}")
        self.graph.add_edge(a, b, latency_ms=latency_ms, jitter_ms=jitter_ms,
                            loss=loss, bandwidth_mbps=bandwidth_mbps)

    def copy(self) -> "OverlayTopology":
        """Independent copy (shared :class:`Site` records, copied graph).

        The self-healing control plane derives its *observed* topology
        view from a copy of the advertised one, so link removals and
        latency updates never mutate the deployment's source of truth.
        """
        clone = OverlayTopology()
        clone.graph = self.graph.copy()
        clone._sites = dict(self._sites)
        return clone

    def disconnect(self, a: str, b: str) -> None:
        """Remove a link (observed-topology mutation; no-op if absent)."""
        if self.graph.has_edge(a, b):
            self.graph.remove_edge(a, b)

    def has_link(self, a: str, b: str) -> bool:
        return self.graph.has_edge(a, b)

    def set_link_latency(self, a: str, b: str, latency_ms: float) -> None:
        """Override a link's latency (observed degradation)."""
        self.graph.edges[a, b]["latency_ms"] = latency_ms

    # ------------------------------------------------------------------
    def site(self, name: str) -> Site:
        return self._sites[name]

    @property
    def sites(self) -> List[Site]:
        return list(self._sites.values())

    def sites_of_kind(self, kind: str) -> List[Site]:
        return [s for s in self._sites.values() if s.kind == kind]

    def neighbors(self, name: str) -> List[str]:
        return list(self.graph.neighbors(name))

    def link_attributes(self, a: str, b: str) -> Dict[str, float]:
        return dict(self.graph.edges[a, b])

    def shortest_paths(self, source: str) -> Dict[str, List[str]]:
        """Latency-weighted shortest paths from ``source`` to every site."""
        return nx.single_source_dijkstra_path(self.graph, source, weight="latency_ms")

    def is_connected_without(self, removed: Iterable[str]) -> bool:
        """Connectivity check after removing sites (for resilience math)."""
        g = self.graph.copy()
        g.remove_nodes_from(list(removed))
        return g.number_of_nodes() > 0 and nx.is_connected(g)

    def is_connected(self) -> bool:
        return self.graph.number_of_nodes() > 0 and nx.is_connected(self.graph)

    def component_count(self) -> int:
        return nx.number_connected_components(self.graph)


def lan_topology(num_sites: int = 1) -> OverlayTopology:
    """Single-LAN topology: all sites in one machine room (~0.2 ms links)."""
    topo = OverlayTopology()
    names = [f"lan{i}" for i in range(num_sites)]
    for name in names:
        topo.add_site(Site(name, "control"))
    for i, a in enumerate(names):
        for b in names[i + 1:]:
            topo.connect(a, b, latency_ms=0.2, jitter_ms=0.05)
    return topo


def wide_area_topology() -> OverlayTopology:
    """The paper's deployment shape: 2 control centers + 2 data centers
    + a field site, spread across the US East coast, fully meshed with
    WAN latencies of a few to ~20 ms one-way, plus a field site attached
    to both control centers.
    """
    topo = OverlayTopology()
    topo.add_site(Site("cc1", "control"))   # primary control center
    topo.add_site(Site("cc2", "control"))   # backup control center
    topo.add_site(Site("dc1", "data"))      # commodity data center 1
    topo.add_site(Site("dc2", "data"))      # commodity data center 2
    topo.add_site(Site("field", "field"))   # substation / HMI site
    wan_links = [
        ("cc1", "cc2", 4.0), ("cc1", "dc1", 8.0), ("cc1", "dc2", 12.0),
        ("cc2", "dc1", 6.0), ("cc2", "dc2", 10.0), ("dc1", "dc2", 9.0),
        ("field", "cc1", 3.0), ("field", "cc2", 5.0),
    ]
    for a, b, latency in wan_links:
        topo.connect(a, b, latency_ms=latency, jitter_ms=0.5)
    return topo


def continental_topology() -> OverlayTopology:
    """A 10-daemon sparse continental overlay for routing-resilience
    experiments (multiple disjoint paths between any two sites)."""
    topo = OverlayTopology()
    cities = ["nyc", "dc", "atl", "chi", "dal", "den", "lax", "sfo", "sea", "slc"]
    kinds = {"nyc": "control", "dc": "control", "chi": "data", "dal": "data"}
    for city in cities:
        topo.add_site(Site(city, kinds.get(city, "field")))
    links = [
        ("nyc", "dc", 2.5), ("nyc", "chi", 9.0), ("dc", "atl", 7.0),
        ("dc", "chi", 8.5), ("atl", "dal", 9.5), ("chi", "den", 11.0),
        ("chi", "dal", 10.0), ("dal", "lax", 15.0), ("den", "slc", 6.0),
        ("den", "dal", 8.0), ("slc", "sfo", 8.0), ("sfo", "lax", 4.0),
        ("sfo", "sea", 9.0), ("sea", "slc", 10.0), ("lax", "den", 12.0),
        ("nyc", "atl", 10.0),
    ]
    for a, b, latency in links:
        topo.connect(a, b, latency_ms=latency, jitter_ms=0.5)
    return topo
