"""Spines overlay daemon.

One daemon runs per site. It accepts datagrams from locally attached
endpoints, forwards datagrams daemon-to-daemon over authenticated links,
deduplicates flooded copies, and delivers to attached destination
endpoints.

Defences modelled from the paper:

* **Per-link authentication** — each daemon-to-daemon hop carries an HMAC
  keyed on the link; datagrams arriving from non-neighbours or failing the
  MAC are dropped. This stops an external network attacker from injecting
  or replaying traffic *inside* the overlay.
* **Per-source fairness** — outgoing forwarding capacity is scheduled
  round-robin across origin endpoints, so a compromised client (or daemon)
  flooding the overlay cannot starve other sources. Disable it
  (``fairness=False``) to reproduce the unfair baseline.

A compromised daemon is modelled via :meth:`set_behavior`; the attack
library installs droppers/delayers there.
"""

from __future__ import annotations

from collections import OrderedDict, deque
from typing import Any, Callable, Deque, Dict, Optional, Set, Tuple

from ..crypto.provider import CryptoProvider
from ..obs import EventLog, Observability, resolve_obs
from ..simnet import Network, Process, Simulator
from .messages import OverlayData, OverlayDeliver, OverlayForward, OverlayIngress
from .routing import RoutingStrategy

__all__ = ["SpinesDaemon"]

#: A behaviour hook: (data, default_action) -> None. The hook decides
#: whether/when to call default_action; not calling it drops the datagram.
BehaviorHook = Callable[[OverlayData, Callable[[], None]], None]


class SpinesDaemon(Process):
    """One overlay daemon at a site."""

    def __init__(
        self,
        site_name: str,
        simulator: Simulator,
        network: Network,
        routing: RoutingStrategy,
        crypto: CryptoProvider,
        trace: Optional[EventLog] = None,
        link_auth: bool = True,
        fairness: bool = True,
        forward_capacity_per_ms: float = 0.0,
        dedup_window: int = 50_000,
        obs: Optional[Observability] = None,
    ) -> None:
        super().__init__(f"spines:{site_name}", simulator, network)
        self.site_name = site_name
        self.routing = routing
        self.crypto = crypto
        self.trace = trace
        self.obs = resolve_obs(obs, trace)
        # Instruments shared by all daemons of a deployment (same names →
        # same registry entries); resolved once so hops pay a None test.
        self._hop_latency = None
        self._e2e_latency = None
        self._drop_counters: Dict[str, Any] = {}
        if self.obs.enabled:
            self._hop_latency = self.obs.histogram("spines.hop_latency_ms")
            self._e2e_latency = self.obs.histogram("spines.transit_latency_ms")
            for reason in ("auth", "dup", "behavior"):
                self._drop_counters[reason] = self.obs.counter(
                    f"spines.dropped_{reason}"
                )
        self.link_auth = link_auth
        self.fairness = fairness
        self.forward_capacity_per_ms = forward_capacity_per_ms
        self.dedup_window = dedup_window
        self.neighbors: Set[str] = set()          # site names
        self.attached: Set[str] = set()            # endpoint names homed here
        self.endpoint_home: Dict[str, str] = {}    # endpoint -> site (global map)
        self._seen: "OrderedDict[Tuple[str, int], None]" = OrderedDict()
        self._queues: Dict[str, Deque[Tuple[str, OverlayData]]] = {}
        self._queue_order: Deque[str] = deque()
        self._draining = False
        self._behavior: Optional[BehaviorHook] = None
        self.stats = {
            "ingress": 0, "forwarded": 0, "delivered": 0,
            "dropped_auth": 0, "dropped_dup": 0, "dropped_behavior": 0,
        }

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def add_neighbor(self, site_name: str) -> None:
        self.neighbors.add(site_name)

    def attach_endpoint(self, endpoint_name: str) -> None:
        self.attached.add(endpoint_name)

    def set_behavior(self, hook: Optional[BehaviorHook]) -> None:
        """Install (or clear) a compromised-daemon behaviour hook."""
        self._behavior = hook

    @staticmethod
    def daemon_name(site_name: str) -> str:
        return f"spines:{site_name}"

    def _count_drop(self, reason: str) -> None:
        self.stats[f"dropped_{reason}"] += 1
        counter = self._drop_counters.get(reason)
        if counter is not None:
            counter.inc()

    # ------------------------------------------------------------------
    # Receive paths
    # ------------------------------------------------------------------
    def on_message(self, src: str, payload: Any) -> None:
        if isinstance(payload, OverlayIngress):
            self._on_ingress(src, payload.data)
        elif isinstance(payload, OverlayForward):
            self._on_forward(src, payload)

    def _on_ingress(self, src: str, data: OverlayData) -> None:
        if src not in self.attached or data.origin != src:
            self._count_drop("auth")
            return
        self.stats["ingress"] += 1
        if self._record_seen(data):
            self._route(data, arrived_from=None)

    def _on_forward(self, src: str, message: OverlayForward) -> None:
        sender_site = message.sender
        if self.daemon_name(sender_site) != src or sender_site not in self.neighbors:
            self._count_drop("auth")
            return
        if self.link_auth and not self.crypto.check_mac(
            src, self.name, message.data, message.mac
        ):
            self._count_drop("auth")
            return
        if self._hop_latency is not None and message.sent_at:
            self._hop_latency.observe(self.simulator.now - message.sent_at)
        if not self._record_seen(message.data):
            self._count_drop("dup")
            return
        self._route(message.data, arrived_from=sender_site)

    def _record_seen(self, data: OverlayData) -> bool:
        """Record (origin, seq); returns False if already seen."""
        key = (data.origin, data.seq)
        if key in self._seen:
            return False
        self._seen[key] = None
        while len(self._seen) > self.dedup_window:
            self._seen.popitem(last=False)
        return True

    # ------------------------------------------------------------------
    # Routing / delivery
    # ------------------------------------------------------------------
    def _route(self, data: OverlayData, arrived_from: Optional[str]) -> None:
        def default_action() -> None:
            self._deliver_local(data)
            dest_site = self.endpoint_home.get(data.dest)
            if dest_site is None:
                return
            if dest_site == self.site_name and self.routing.name == "shortest":
                return  # delivered locally; nothing to forward
            for neighbor in self.routing.forward_targets(
                self.site_name, dest_site, arrived_from
            ):
                self._enqueue_forward(neighbor, data)

        if self._behavior is not None:
            before = self.stats["forwarded"] + self.stats["delivered"]
            self._behavior(data, default_action)
            if self.stats["forwarded"] + self.stats["delivered"] == before:
                self._count_drop("behavior")
        else:
            default_action()

    def _deliver_local(self, data: OverlayData) -> None:
        if data.dest in self.attached:
            self.stats["delivered"] += 1
            if self._e2e_latency is not None and data.sent_at:
                self._e2e_latency.observe(self.simulator.now - data.sent_at)
            self.send(data.dest, OverlayDeliver(data), size_bytes=data.size_bytes)

    # ------------------------------------------------------------------
    # Forwarding with per-source fairness
    # ------------------------------------------------------------------
    def _enqueue_forward(self, neighbor_site: str, data: OverlayData) -> None:
        if self.forward_capacity_per_ms <= 0:
            self._forward_now(neighbor_site, data)
            return
        source = data.origin if self.fairness else "__fifo__"
        queue = self._queues.setdefault(source, deque())
        if source not in self._queue_order:
            self._queue_order.append(source)
        queue.append((neighbor_site, data))
        if not self._draining:
            self._draining = True
            self.set_timer(0.0, self._drain)

    def _drain(self) -> None:
        """Serve one queued forward per 1/capacity ms, round-robin."""
        while self._queue_order:
            source = self._queue_order[0]
            queue = self._queues.get(source)
            if not queue:
                self._queue_order.popleft()
                self._queues.pop(source, None)
                continue
            neighbor_site, data = queue.popleft()
            self._queue_order.rotate(-1)
            self._forward_now(neighbor_site, data)
            self.set_timer(1.0 / self.forward_capacity_per_ms, self._drain)
            return
        self._draining = False

    def _forward_now(self, neighbor_site: str, data: OverlayData) -> None:
        dst = self.daemon_name(neighbor_site)
        mac = self.crypto.mac(self.name, dst, data) if self.link_auth else b""
        self.stats["forwarded"] += 1
        sent_at = self.simulator.now if self._hop_latency is not None else 0.0
        self.send(dst, OverlayForward(data, self.site_name, mac, sent_at),
                  size_bytes=data.size_bytes)

    # ------------------------------------------------------------------
    def on_recover(self) -> None:
        """A rejoining daemon loses its dedup/queue state (volatile)."""
        self._seen.clear()
        self._queues.clear()
        self._queue_order.clear()
        self._draining = False
