"""Spines overlay daemon.

One daemon runs per site. It accepts datagrams from locally attached
endpoints, forwards datagrams daemon-to-daemon over authenticated links,
deduplicates flooded copies, and delivers to attached destination
endpoints.

Defences modelled from the paper:

* **Per-link authentication** — each daemon-to-daemon hop carries an HMAC
  keyed on the link; datagrams arriving from non-neighbours or failing the
  MAC are dropped. This stops an external network attacker from injecting
  or replaying traffic *inside* the overlay.
* **Per-source fairness** — outgoing forwarding capacity is scheduled
  round-robin across origin endpoints, so a compromised client (or daemon)
  flooding the overlay cannot starve other sources. Disable it
  (``fairness=False``) to reproduce the unfair baseline.
* **Overload protection** — each per-source forward queue is bounded
  (``max_queue_per_source``; excess counted in ``dropped_overflow``) and a
  per-source token bucket (``source_rate_per_ms`` tokens/ms, burst
  ``source_burst``) gates admission to forwarding, so a flooding source
  degrades its *own* throughput while daemon memory stays bounded. Both
  default off.

A compromised daemon is modelled via :meth:`set_behavior`; the attack
library installs droppers/delayers there. When the self-healing control
plane is enabled (:mod:`repro.spines.monitor`), the overlay assigns each
daemon a :class:`~repro.spines.monitor.LinkMonitor` via :attr:`monitor`;
incoming :class:`~repro.spines.messages.OverlayHello` probes are
link-authenticated here and then handed to it.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Any, Callable, Deque, Dict, Optional, Set, Tuple

from ..crypto.provider import CryptoProvider
from ..obs import EventLog, Observability, resolve_obs
from ..simnet import Network, Process, Simulator
from .messages import (
    OverlayData,
    OverlayDeliver,
    OverlayForward,
    OverlayHello,
    OverlayIngress,
)
from .routing import RoutingStrategy

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .monitor import LinkMonitor

__all__ = ["SpinesDaemon"]

#: A behaviour hook: (data, default_action) -> None. The hook decides
#: whether/when to call default_action; not calling it drops the datagram.
BehaviorHook = Callable[[OverlayData, Callable[[], None]], None]


class SpinesDaemon(Process):
    """One overlay daemon at a site."""

    def __init__(
        self,
        site_name: str,
        simulator: Simulator,
        network: Network,
        routing: RoutingStrategy,
        crypto: CryptoProvider,
        trace: Optional[EventLog] = None,
        link_auth: bool = True,
        fairness: bool = True,
        forward_capacity_per_ms: float = 0.0,
        dedup_window: int = 50_000,
        max_queue_per_source: int = 0,
        source_rate_per_ms: float = 0.0,
        source_burst: float = 32.0,
        obs: Optional[Observability] = None,
    ) -> None:
        super().__init__(f"spines:{site_name}", simulator, network)
        self.site_name = site_name
        self.routing = routing
        self.crypto = crypto
        self.trace = trace
        self.obs = resolve_obs(obs, trace)
        # Instruments shared by all daemons of a deployment (same names →
        # same registry entries); resolved once so hops pay a None test.
        self._hop_latency = None
        self._e2e_latency = None
        self._drop_counters: Dict[str, Any] = {}
        if self.obs.enabled:
            self._hop_latency = self.obs.histogram("spines.hop_latency_ms")
            self._e2e_latency = self.obs.histogram("spines.transit_latency_ms")
            for reason in ("auth", "dup", "behavior", "overflow", "ratelimit"):
                self._drop_counters[reason] = self.obs.counter(
                    f"spines.dropped_{reason}"
                )
        self.link_auth = link_auth
        self.fairness = fairness
        self.forward_capacity_per_ms = forward_capacity_per_ms
        self.dedup_window = dedup_window
        self.max_queue_per_source = max_queue_per_source
        self.source_rate_per_ms = source_rate_per_ms
        self.source_burst = source_burst
        self.neighbors: Set[str] = set()          # site names
        self.attached: Set[str] = set()            # endpoint names homed here
        self.endpoint_home: Dict[str, str] = {}    # endpoint -> site (global map)
        self._seen: Dict[Tuple[str, int], None] = {}
        self._queues: Dict[str, Deque[Tuple[str, OverlayData]]] = {}
        self._queue_order: Deque[str] = deque()
        self._queued_sources: Set[str] = set()     # mirrors _queue_order
        self._queued_total = 0
        self.queue_peak = 0
        #: (tokens, last_refill_ms) per origin — lazy-refilled token bucket
        self._buckets: Dict[str, Tuple[float, float]] = {}
        self._draining = False
        self._behavior: Optional[BehaviorHook] = None
        #: set by SpinesOverlay when self-healing is enabled
        self.monitor: Optional["LinkMonitor"] = None
        self.stats = {
            "ingress": 0, "forwarded": 0, "delivered": 0,
            "dropped_auth": 0, "dropped_dup": 0, "dropped_behavior": 0,
            "dropped_overflow": 0, "dropped_ratelimit": 0,
        }

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def add_neighbor(self, site_name: str) -> None:
        self.neighbors.add(site_name)

    def attach_endpoint(self, endpoint_name: str) -> None:
        self.attached.add(endpoint_name)

    def set_behavior(self, hook: Optional[BehaviorHook]) -> None:
        """Install (or clear) a compromised-daemon behaviour hook."""
        self._behavior = hook

    @staticmethod
    def daemon_name(site_name: str) -> str:
        return f"spines:{site_name}"

    def _count_drop(self, reason: str) -> None:
        self.stats[f"dropped_{reason}"] += 1
        counter = self._drop_counters.get(reason)
        if counter is not None:
            counter.inc()

    # ------------------------------------------------------------------
    # Receive paths
    # ------------------------------------------------------------------
    def on_message(self, src: str, payload: Any) -> None:
        if isinstance(payload, OverlayIngress):
            self._on_ingress(src, payload.data)
        elif isinstance(payload, OverlayForward):
            self._on_forward(src, payload)
        elif isinstance(payload, OverlayHello):
            self._on_hello(src, payload)

    def _on_ingress(self, src: str, data: OverlayData) -> None:
        if src not in self.attached or data.origin != src:
            self._count_drop("auth")
            return
        self.stats["ingress"] += 1
        if self._record_seen(data):
            self._route(data, arrived_from=None)

    def _on_forward(self, src: str, message: OverlayForward) -> None:
        sender_site = message.sender
        if self.daemon_name(sender_site) != src or sender_site not in self.neighbors:
            self._count_drop("auth")
            return
        if self.link_auth and not self.crypto.check_mac(
            src, self.name, message.data, message.mac
        ):
            self._count_drop("auth")
            return
        if self._hop_latency is not None and message.sent_at:
            self._hop_latency.observe(self.simulator.now - message.sent_at)
        if not self._record_seen(message.data):
            self._count_drop("dup")
            return
        self._route(message.data, arrived_from=sender_site)

    def _on_hello(self, src: str, hello: OverlayHello) -> None:
        """Link-monitor keepalive: authenticate, then hand to the monitor."""
        sender = hello.sender
        if self.daemon_name(sender) != src or sender not in self.neighbors:
            self._count_drop("auth")
            return
        if self.link_auth and not self.crypto.check_mac(
            src, self.name, (hello.sender, hello.seq, hello.sent_at), hello.mac
        ):
            self._count_drop("auth")
            return
        if self.monitor is not None:
            self.monitor.on_hello(sender, hello)

    def _record_seen(self, data: OverlayData) -> bool:
        """Record (origin, seq); returns False if already seen."""
        seen = self._seen
        key = (data.origin, data.seq)
        if key in seen:
            return False
        seen[key] = None
        if len(seen) > self.dedup_window:
            # FIFO eviction: plain dicts iterate in insertion order, so
            # the first key is the oldest (entries are only ever appended)
            del seen[next(iter(seen))]
        return True

    # ------------------------------------------------------------------
    # Routing / delivery
    # ------------------------------------------------------------------
    def _route(self, data: OverlayData, arrived_from: Optional[str]) -> None:
        if self._behavior is not None:
            def default_action() -> None:
                self._route_default(data, arrived_from)

            before = self.stats["forwarded"] + self.stats["delivered"]
            self._behavior(data, default_action)
            if self.stats["forwarded"] + self.stats["delivered"] == before:
                self._count_drop("behavior")
        else:
            # no byzantine behavior installed (the common case): route
            # directly, skipping the per-message closure allocation
            self._route_default(data, arrived_from)

    def _route_default(self, data: OverlayData, arrived_from: Optional[str]) -> None:
        self._deliver_local(data)
        if not self.neighbors:
            # isolated (single-site) daemon: routing can only ever return
            # an empty target set, so skip the strategy call per message
            return
        dest_site = self.endpoint_home.get(data.dest)
        if dest_site is None:
            return
        if dest_site == self.site_name and self.routing.name == "shortest":
            return  # delivered locally; nothing to forward
        targets = self.routing.forward_targets(
            self.site_name, dest_site, arrived_from
        )
        if targets and not self._admit(data):
            self._count_drop("ratelimit")
            return
        for neighbor in targets:
            self._enqueue_forward(neighbor, data)

    def _deliver_local(self, data: OverlayData) -> None:
        if data.dest in self.attached:
            self.stats["delivered"] += 1
            if self._e2e_latency is not None and data.sent_at:
                self._e2e_latency.observe(self.simulator.now - data.sent_at)
            self.send(data.dest, OverlayDeliver(data), size_bytes=data.size_bytes)

    # ------------------------------------------------------------------
    # Forwarding with per-source fairness + overload protection
    # ------------------------------------------------------------------
    def _admit(self, data: OverlayData) -> bool:
        """Per-source token bucket gating admission to forwarding.

        Local delivery is never rate-limited; only the forward fan-out is,
        so a source exceeding its rate hurts its own long-haul traffic.
        """
        if self.source_rate_per_ms <= 0:
            return True
        now = self.simulator.now
        tokens, last = self._buckets.get(data.origin, (self.source_burst, now))
        tokens = min(
            self.source_burst, tokens + (now - last) * self.source_rate_per_ms
        )
        if tokens < 1.0:
            self._buckets[data.origin] = (tokens, now)
            return False
        self._buckets[data.origin] = (tokens - 1.0, now)
        return True

    def _enqueue_forward(self, neighbor_site: str, data: OverlayData) -> None:
        if self.forward_capacity_per_ms <= 0:
            self._forward_now(neighbor_site, data)
            return
        source = data.origin if self.fairness else "__fifo__"
        queue = self._queues.setdefault(source, deque())
        if self.max_queue_per_source > 0 and len(queue) >= self.max_queue_per_source:
            self._count_drop("overflow")
            return
        if source not in self._queued_sources:
            self._queued_sources.add(source)
            self._queue_order.append(source)
        queue.append((neighbor_site, data))
        self._queued_total += 1
        if self._queued_total > self.queue_peak:
            self.queue_peak = self._queued_total
        if not self._draining:
            self._draining = True
            self.set_timer(0.0, self._drain)

    def queue_depth(self) -> int:
        """Total datagrams currently queued for forwarding (all sources)."""
        return self._queued_total

    def _drain(self) -> None:
        """Serve one queued forward per 1/capacity ms, round-robin."""
        while self._queue_order:
            source = self._queue_order[0]
            queue = self._queues.get(source)
            if not queue:
                self._queue_order.popleft()
                self._queued_sources.discard(source)
                self._queues.pop(source, None)
                continue
            neighbor_site, data = queue.popleft()
            self._queued_total -= 1
            self._queue_order.rotate(-1)
            self._forward_now(neighbor_site, data)
            self.set_timer(1.0 / self.forward_capacity_per_ms, self._drain)
            return
        self._draining = False

    def _forward_now(self, neighbor_site: str, data: OverlayData) -> None:
        dst = self.daemon_name(neighbor_site)
        mac = self.crypto.mac(self.name, dst, data) if self.link_auth else b""
        self.stats["forwarded"] += 1
        sent_at = self.simulator.now if self._hop_latency is not None else 0.0
        self.send(dst, OverlayForward(data, self.site_name, mac, sent_at),
                  size_bytes=data.size_bytes)

    # ------------------------------------------------------------------
    def on_recover(self) -> None:
        """A rejoining daemon loses its dedup/queue state (volatile) and —
        when self-healing is on — restarts its link monitor, whose resumed
        hellos are what re-announce this daemon to its neighbours."""
        self._seen.clear()
        self._queues.clear()
        self._queue_order.clear()
        self._queued_sources.clear()
        self._queued_total = 0
        self._buckets.clear()
        self._draining = False
        if self.monitor is not None:
            self.monitor.start()
