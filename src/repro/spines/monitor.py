"""Self-healing overlay control plane: link monitors + route manager.

The real Spines daemons run a link-state protocol: every daemon probes its
links with hello packets, floods link-state updates when a link dies or
degrades, and recomputes routes from the resulting *observed* topology.
This module reproduces that feedback loop on top of the simulator:

* :class:`LinkMonitor` — one per daemon. Sends an authenticated
  :class:`~repro.spines.messages.OverlayHello` on every advertised link
  each ``hello_interval_ms`` and watches incoming hellos. A link is
  **dead** after ``miss_threshold`` missed intervals, and **degraded**
  when the one-way latency EWMA exceeds ``degraded_factor ×`` the
  advertised latency (silent degradation — the DoS the paper highlights
  because static routing cannot see it).
* :class:`OverlayControlPlane` — one per overlay. Collects link reports,
  maintains the observed :class:`~repro.spines.topology.OverlayTopology`
  view (advertised minus dead links, with degraded latencies substituted),
  coalesces changes for ``reroute_delay_ms`` (modelling link-state
  propagation), then calls ``routing.rebuild(observed)`` — one shared
  routing instance serves all daemons, so a single rebuild is the
  converged link-state database. Partitions of the observed view surface
  as an obs event and a counter, and **flap damping** suppresses links
  whose state thrashes (the defence against a route-flapping attacker
  that lies in its hellos).

Everything here is opt-in (``SpinesOverlay(self_healing=True)``): a
static overlay sends no hellos and never reroutes, preserving seed-exact
behaviour of existing scenarios.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Set, Tuple

from ..obs import (
    COMP_OVERLAY,
    EV_OVERLAY_LINK_DEGRADED,
    EV_OVERLAY_LINK_DOWN,
    EV_OVERLAY_LINK_SUPPRESSED,
    EV_OVERLAY_LINK_UP,
    EV_OVERLAY_PARTITION,
    EV_OVERLAY_REROUTE,
    NULL_OBS,
)
from ..simnet import Simulator
from .messages import OverlayHello
from .routing import RoutingStrategy
from .topology import OverlayTopology

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .daemon import SpinesDaemon

__all__ = ["LinkMonitorConfig", "LinkMonitor", "OverlayControlPlane"]

#: Hook applied to each outgoing hello: ``(neighbor_site, hello) ->
#: hello | None``. Returning ``None`` suppresses the probe; returning a
#: modified hello lies about it (the attack library's flap attacker).
HelloMutator = Callable[[str, OverlayHello], Optional[OverlayHello]]


@dataclass(frozen=True)
class LinkMonitorConfig:
    """Timing/thresholds of the hello protocol and the reroute loop."""

    #: hello send period per link (also the dead-link check period)
    hello_interval_ms: float = 100.0
    #: consecutive missed hellos before a link is declared dead
    miss_threshold: int = 3
    #: smoothing factor of the one-way latency EWMA
    ewma_alpha: float = 0.3
    #: EWMA > advertised × this ⇒ the link is reported degraded
    degraded_factor: float = 3.0
    #: EWMA ≤ advertised × this ⇒ a degraded link is reported recovered
    #: (hysteresis, so jitter at the threshold does not thrash routes)
    recovered_factor: float = 1.5
    #: coalescing delay between a link report and the route rebuild
    #: (models link-state-update propagation across the overlay)
    reroute_delay_ms: float = 50.0
    #: flap damping: this many down-transitions within ``flap_window_ms``
    #: suppresses the link for ``suppress_ms`` (hold-down)
    max_flaps: int = 4
    flap_window_ms: float = 5000.0
    suppress_ms: float = 5000.0
    #: wire size of one hello probe
    hello_size_bytes: int = 64

    @property
    def dead_after_ms(self) -> float:
        """Silence duration after which a link is considered dead."""
        return self.hello_interval_ms * self.miss_threshold

    @property
    def detection_bound_ms(self) -> float:
        """Worst-case failure-to-reroute time: a hello sent just before
        the failure keeps the link alive for ``dead_after_ms``, the
        periodic check adds up to one interval of phase lag, and the
        rebuild is coalesced for ``reroute_delay_ms``."""
        return (
            self.dead_after_ms + self.hello_interval_ms + self.reroute_delay_ms
        )


class LinkMonitor:
    """Per-daemon hello sender + per-link failure/degradation detector.

    Timers ride on the daemon's incarnation-guarded :meth:`Process.every`,
    so they die with the daemon on a crash; ``SpinesDaemon.on_recover``
    calls :meth:`start` again, which is exactly a rejoining daemon
    re-announcing itself (its neighbours mark the links back up as soon as
    its hellos resume).
    """

    def __init__(
        self,
        daemon: "SpinesDaemon",
        control: OverlayControlPlane,
        config: Optional[LinkMonitorConfig] = None,
    ) -> None:
        self.daemon = daemon
        self.control = control
        self.config = config or control.config
        self._seq = 0
        self._last_seen: Dict[str, float] = {}
        self._ewma: Dict[str, float] = {}
        self._alive: Dict[str, bool] = {}
        self._degraded: Dict[str, bool] = {}
        self._mutator: Optional[HelloMutator] = None
        self._stops: List[Callable[[], None]] = []
        self.hellos_sent = 0
        self.hellos_received = 0

    # ------------------------------------------------------------------
    def start(self) -> None:
        """(Re)start the hello and dead-link-check loops.

        Called once at overlay construction and again from the daemon's
        ``on_recover`` — timers set before a crash never fire after it.
        """
        for stop in self._stops:
            stop()
        now = self.daemon.simulator.now
        for neighbor in sorted(self.daemon.neighbors):
            self._last_seen[neighbor] = now
            self._alive[neighbor] = True
            self._degraded[neighbor] = False
            self._ewma.pop(neighbor, None)
        self._stops = [
            self.daemon.every(self.config.hello_interval_ms, self._send_hellos),
            self.daemon.every(self.config.hello_interval_ms, self._check_links),
        ]

    def set_hello_mutator(self, mutator: Optional[HelloMutator]) -> None:
        """Install (or clear) a compromised-daemon hello hook."""
        self._mutator = mutator

    def is_alive(self, neighbor: str) -> bool:
        """This side's view of the link to ``neighbor``."""
        return self._alive.get(neighbor, True)

    def observed_latency(self, neighbor: str) -> Optional[float]:
        return self._ewma.get(neighbor)

    # ------------------------------------------------------------------
    # Hello send / receive
    # ------------------------------------------------------------------
    def _send_hellos(self) -> None:
        daemon = self.daemon
        now = daemon.simulator.now
        self._seq += 1
        for neighbor in sorted(daemon.neighbors):
            hello = OverlayHello(daemon.site_name, self._seq, now)
            if self._mutator is not None:
                mutated = self._mutator(neighbor, hello)
                if mutated is None:
                    continue
                hello = mutated
            dst = daemon.daemon_name(neighbor)
            if daemon.link_auth:
                mac = daemon.crypto.mac(
                    daemon.name, dst, (hello.sender, hello.seq, hello.sent_at)
                )
                hello = dataclasses.replace(hello, mac=mac)
            self.hellos_sent += 1
            daemon.send(dst, hello, size_bytes=self.config.hello_size_bytes)

    def on_hello(self, sender: str, hello: OverlayHello) -> None:
        """Authenticated hello from a neighbour (the daemon verified the
        MAC and neighbour-ship before delegating here)."""
        config = self.config
        now = self.daemon.simulator.now
        self.hellos_received += 1
        self._last_seen[sender] = now
        sample = max(0.0, now - hello.sent_at)
        if not self._alive.get(sender, True):
            # first hello after a dead period: the link is back
            self._alive[sender] = True
            self._degraded[sender] = False
            self._ewma[sender] = sample
            self.control.report_link_up(self.daemon.site_name, sender)
            return
        previous = self._ewma.get(sender)
        ewma = (
            sample if previous is None
            else config.ewma_alpha * sample + (1.0 - config.ewma_alpha) * previous
        )
        self._ewma[sender] = ewma
        advertised = self.control.advertised_latency(self.daemon.site_name, sender)
        if not self._degraded.get(sender) and (
            ewma > advertised * config.degraded_factor
        ):
            self._degraded[sender] = True
            self.control.report_link_degraded(
                self.daemon.site_name, sender, ewma
            )
        elif self._degraded.get(sender) and (
            ewma <= advertised * config.recovered_factor
        ):
            self._degraded[sender] = False
            self.control.report_link_restored(self.daemon.site_name, sender)

    # ------------------------------------------------------------------
    # Dead-link detection
    # ------------------------------------------------------------------
    def _check_links(self) -> None:
        now = self.daemon.simulator.now
        dead_after = self.config.dead_after_ms
        for neighbor in sorted(self.daemon.neighbors):
            if not self._alive.get(neighbor, True):
                continue
            if now - self._last_seen.get(neighbor, now) > dead_after:
                self._alive[neighbor] = False
                self._degraded[neighbor] = False
                self.control.report_link_down(self.daemon.site_name, neighbor)


class OverlayControlPlane:
    """The overlay's converged link-state view + route recomputation.

    All daemons of one overlay share one routing-strategy instance, so
    this object models the *converged* link-state database: monitors
    report per-link transitions, the control plane folds them into an
    observed topology copy and rebuilds the shared routing after a
    coalescing delay. One report per transition suffices — a link is down
    if *either* endpoint declares it dead, and up again when either side
    hears hellos across it.
    """

    def __init__(
        self,
        simulator: Simulator,
        topology: OverlayTopology,
        routing: RoutingStrategy,
        config: Optional[LinkMonitorConfig] = None,
        obs=None,
    ) -> None:
        self.simulator = simulator
        self.advertised = topology
        self.routing = routing
        self.config = config or LinkMonitorConfig()
        self.obs = obs if obs is not None else NULL_OBS
        #: site -> that daemon's LinkMonitor (filled by SpinesOverlay)
        self.monitors: Dict[str, LinkMonitor] = {}
        self._down: Set[Tuple[str, str]] = set()
        self._degraded: Dict[Tuple[str, str], float] = {}
        self._suppressed_until: Dict[Tuple[str, str], float] = {}
        self._flap_times: Dict[Tuple[str, str], List[float]] = {}
        self._rebuild_pending = False
        self.observed = topology.copy()
        self.reroutes = 0
        self.partitioned = False
        self.partitions_seen = 0

    # ------------------------------------------------------------------
    @staticmethod
    def _key(a: str, b: str) -> Tuple[str, str]:
        return (a, b) if a <= b else (b, a)

    def advertised_latency(self, a: str, b: str) -> float:
        return self.advertised.link_attributes(a, b).get("latency_ms", 1.0)

    def links_down(self) -> Set[Tuple[str, str]]:
        return set(self._down)

    def degraded_links(self) -> Dict[Tuple[str, str], float]:
        return dict(self._degraded)

    def is_suppressed(self, a: str, b: str) -> bool:
        key = self._key(a, b)
        return self._suppressed_until.get(key, 0.0) > self.simulator.now

    # ------------------------------------------------------------------
    # Reports from link monitors
    # ------------------------------------------------------------------
    def report_link_down(self, a: str, b: str) -> None:
        key = self._key(a, b)
        if key in self._down:
            return
        self._down.add(key)
        self._degraded.pop(key, None)
        self._event(EV_OVERLAY_LINK_DOWN, link=f"{key[0]}<->{key[1]}")
        self._note_flap(key)
        self._schedule_rebuild()

    def report_link_up(self, a: str, b: str) -> None:
        key = self._key(a, b)
        if key not in self._down:
            return
        if self._suppressed_until.get(key, 0.0) > self.simulator.now:
            return  # hold-down: re-checked when the suppression expires
        self._down.discard(key)
        self._event(EV_OVERLAY_LINK_UP, link=f"{key[0]}<->{key[1]}")
        self._schedule_rebuild()

    def report_link_degraded(self, a: str, b: str, latency_ms: float) -> None:
        key = self._key(a, b)
        if key in self._down:
            return
        self._degraded[key] = latency_ms
        self._event(
            EV_OVERLAY_LINK_DEGRADED,
            link=f"{key[0]}<->{key[1]}", latency_ms=round(latency_ms, 3),
        )
        self._schedule_rebuild()

    def report_link_restored(self, a: str, b: str) -> None:
        """A degraded (not dead) link's latency returned to normal."""
        key = self._key(a, b)
        if self._degraded.pop(key, None) is None:
            return
        self._event(
            EV_OVERLAY_LINK_UP, link=f"{key[0]}<->{key[1]}",
            reason="latency-recovered",
        )
        self._schedule_rebuild()

    # ------------------------------------------------------------------
    # Flap damping
    # ------------------------------------------------------------------
    def _note_flap(self, key: Tuple[str, str]) -> None:
        now = self.simulator.now
        times = self._flap_times.setdefault(key, [])
        times.append(now)
        cutoff = now - self.config.flap_window_ms
        while times and times[0] < cutoff:
            times.pop(0)
        if len(times) < self.config.max_flaps:
            return
        self._suppressed_until[key] = now + self.config.suppress_ms
        self._event(
            EV_OVERLAY_LINK_SUPPRESSED,
            link=f"{key[0]}<->{key[1]}",
            flaps=len(times),
            until_ms=round(now + self.config.suppress_ms, 3),
        )
        self.simulator.schedule(
            self.config.suppress_ms, lambda: self._suppression_expired(key)
        )

    def _suppression_expired(self, key: Tuple[str, str]) -> None:
        if self._suppressed_until.get(key, 0.0) > self.simulator.now:
            return  # re-suppressed in the meantime
        a, b = key
        monitor_a = self.monitors.get(a)
        monitor_b = self.monitors.get(b)
        alive = (
            (monitor_a is None or monitor_a.is_alive(b))
            and (monitor_b is None or monitor_b.is_alive(a))
        )
        if alive and key in self._down:
            self._down.discard(key)
            self._event(
                EV_OVERLAY_LINK_UP, link=f"{a}<->{b}",
                reason="suppression-expired",
            )
            self._schedule_rebuild()

    # ------------------------------------------------------------------
    # Route recomputation
    # ------------------------------------------------------------------
    def _schedule_rebuild(self) -> None:
        if self._rebuild_pending:
            return
        self._rebuild_pending = True
        self.simulator.schedule(self.config.reroute_delay_ms, self._rebuild)

    def _rebuild(self) -> None:
        self._rebuild_pending = False
        observed = self.advertised.copy()
        for a, b in sorted(self._down):
            observed.disconnect(a, b)
        for (a, b), latency_ms in sorted(self._degraded.items()):
            if observed.has_link(a, b):
                observed.set_link_latency(a, b, latency_ms)
        self.observed = observed
        self.routing.rebuild(observed)
        self.reroutes += 1
        self._event(
            EV_OVERLAY_REROUTE,
            links_down=len(self._down), degraded=len(self._degraded),
        )
        partitioned = not observed.is_connected()
        if partitioned and not self.partitioned:
            self.partitions_seen += 1
            self._event(
                EV_OVERLAY_PARTITION, components=observed.component_count()
            )
        self.partitioned = partitioned
        if getattr(self.obs, "enabled", False):
            self.obs.gauge("overlay.links_down").set(float(len(self._down)))
            self.obs.counter("overlay.reroutes").inc()

    # ------------------------------------------------------------------
    def _event(self, kind: str, **details) -> None:
        self.obs.event(COMP_OVERLAY, kind, **details)
