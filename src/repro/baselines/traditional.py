"""Traditional (non-intrusion-tolerant) SCADA baseline.

This is the system the paper's red-team exercise broke: a single SCADA
master (with an optional hot-standby backup) that field proxies trust on
the basis of a shared credential. It has no Byzantine tolerance: whoever
controls the master host controls every breaker in the field. The
red-team benchmark compromises it and measures the grid damage, then runs
the same campaign against Spire.

The data path mirrors Spire's (same Modbus polling, same grid), so the
comparison isolates the architecture, not the workload.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from ..obs import EventLog
from ..scada.grid import PowerGrid, build_radial_grid
from ..scada.modbus import (
    ReadCoilsRequest,
    ReadCoilsResponse,
    ReadRequest,
    ReadResponse,
    WriteCoilRequest,
    WriteCoilResponse,
    encode_frame,
    unscale_measurement,
)
from ..scada.rtu import MEASUREMENT_ORDER, RtuDevice
from ..simnet import LinkSpec, Network, Process, Simulator

__all__ = [
    "TStatus",
    "TCommand",
    "THeartbeat",
    "TraditionalMaster",
    "TraditionalProxy",
    "TraditionalDeployment",
]


@dataclass(frozen=True)
class TStatus:
    """Proxy -> master: plain status report (no cryptographic protection)."""

    proxy: str
    substation: str
    poll_seq: int
    measurements: Tuple[Tuple[str, float], ...]
    breakers: Tuple[Tuple[str, bool], ...]


@dataclass(frozen=True)
class TCommand:
    """Master -> proxy: operate a breaker, authenticated by a shared token."""

    token: str
    substation: str
    breaker_id: str
    close: bool


@dataclass(frozen=True)
class THeartbeat:
    sender: str


@dataclass(frozen=True)
class TOperatorCommand:
    """HMI -> master."""

    substation: str
    breaker_id: str
    close: bool


class TraditionalMaster(Process):
    """Single (or hot-standby) SCADA master."""

    def __init__(
        self,
        name: str,
        simulator: Simulator,
        network: Network,
        token: str,
        proxies: List[str],
        is_primary: bool = True,
        peer_master: Optional[str] = None,
        heartbeat_interval_ms: float = 500.0,
        failover_timeout_ms: float = 2000.0,
    ) -> None:
        super().__init__(name, simulator, network)
        self.token = token
        self.proxies = list(proxies)
        self.is_primary = is_primary
        self.peer_master = peer_master
        self.heartbeat_interval_ms = heartbeat_interval_ms
        self.failover_timeout_ms = failover_timeout_ms
        self.latest_status: Dict[str, TStatus] = {}
        self.commands_issued = 0
        self.compromised = False
        self._last_peer_heartbeat = 0.0

    def start(self) -> None:
        self.every(self.heartbeat_interval_ms, self._heartbeat_tick)
        if not self.is_primary:
            self.every(self.failover_timeout_ms / 2, self._failover_check)

    def _heartbeat_tick(self) -> None:
        if self.peer_master is not None and self.is_primary:
            self.send(self.peer_master, THeartbeat(self.name), size_bytes=32)

    def _failover_check(self) -> None:
        if self.is_primary:
            return
        if self.simulator.now - self._last_peer_heartbeat > self.failover_timeout_ms:
            self.is_primary = True  # promote: hot-standby takeover

    def on_message(self, src: str, payload: Any) -> None:
        if isinstance(payload, TStatus):
            current = self.latest_status.get(payload.substation)
            if current is None or current.poll_seq < payload.poll_seq:
                self.latest_status[payload.substation] = payload
        elif isinstance(payload, THeartbeat):
            self._last_peer_heartbeat = self.simulator.now
        elif isinstance(payload, TOperatorCommand):
            if self.is_primary:
                self.issue_command(payload.substation, payload.breaker_id, payload.close)

    def issue_command(self, substation: str, breaker_id: str, close: bool) -> None:
        """Send an authenticated command to every proxy (the right one
        will act on it)."""
        self.commands_issued += 1
        command = TCommand(self.token, substation, breaker_id, close)
        for proxy in self.proxies:
            self.send(proxy, command, size_bytes=96)

    # ------------------------------------------------------------------
    def compromise(self) -> None:
        """Attacker takes over this master host: it holds the shared token
        and full knowledge of the field layout."""
        self.compromised = True


class TraditionalProxy(Process):
    """Field proxy: Modbus toward devices, token-checked commands inward."""

    def __init__(
        self,
        name: str,
        simulator: Simulator,
        network: Network,
        token: str,
        masters: List[str],
        devices: List[Tuple[str, str, int, Tuple[str, ...]]],
        poll_interval_ms: float = 100.0,
    ) -> None:
        """``devices``: (substation, device_name, unit_id, coil_ids)."""
        super().__init__(name, simulator, network)
        self.token = token
        self.masters = list(masters)
        self.poll_interval_ms = poll_interval_ms
        self.devices = {d[0]: d for d in devices}
        self._by_unit = {d[2]: d for d in devices}
        self._poll_seq: Dict[str, int] = {d[0]: 0 for d in devices}
        self._registers: Dict[str, Tuple[int, ...]] = {}
        self.commands_executed = 0
        self.status_sent = 0

    def start(self) -> None:
        self.every(self.poll_interval_ms, self._poll_tick, jitter=2.0)

    def _poll_tick(self) -> None:
        for substation, (_, device_name, unit_id, _) in self.devices.items():
            frame = encode_frame(ReadRequest(unit_id, 0, len(MEASUREMENT_ORDER)))
            self.send(device_name, RtuDevice.wrap(frame), size_bytes=16)

    def on_message(self, src: str, payload: Any) -> None:
        frame = RtuDevice.unwrap(payload)
        if frame is not None:
            self._on_modbus(frame)
            return
        if isinstance(payload, TCommand):
            self._on_command(payload)

    def _on_modbus(self, frame: bytes) -> None:
        from ..scada.modbus import ModbusError, decode_frame

        try:
            message = decode_frame(frame)
        except ModbusError:
            return
        device = self._by_unit.get(getattr(message, "unit", None))
        if device is None:
            return
        substation, device_name, unit_id, coil_ids = device
        if isinstance(message, ReadResponse):
            self._registers[substation] = message.values
            frame_out = encode_frame(ReadCoilsRequest(unit_id, 0, len(coil_ids)))
            self.send(device_name, RtuDevice.wrap(frame_out), size_bytes=16)
        elif isinstance(message, ReadCoilsResponse):
            registers = self._registers.get(substation, ())
            self._poll_seq[substation] += 1
            status = TStatus(
                proxy=self.name,
                substation=substation,
                poll_seq=self._poll_seq[substation],
                measurements=tuple(
                    (key, unscale_measurement(reg))
                    for key, reg in zip(MEASUREMENT_ORDER, registers)
                ),
                breakers=tuple(sorted(zip(coil_ids, message.values))),
            )
            for master in self.masters:
                self.send(master, status, size_bytes=200)
            self.status_sent += 1
        elif isinstance(message, WriteCoilResponse):
            self.commands_executed += 1

    def _on_command(self, command: TCommand) -> None:
        if command.token != self.token:
            return  # the only protection: a static shared credential
        device = self.devices.get(command.substation)
        if device is None:
            return
        _, device_name, unit_id, coil_ids = device
        try:
            address = coil_ids.index(command.breaker_id)
        except ValueError:
            return
        frame = encode_frame(WriteCoilRequest(unit_id, address, command.close))
        self.send(device_name, RtuDevice.wrap(frame), size_bytes=16)


class TraditionalDeployment:
    """A complete traditional-SCADA system over the same grid model."""

    def __init__(
        self,
        num_substations: int = 5,
        seed: int = 1,
        poll_interval_ms: float = 100.0,
        with_backup: bool = True,
        wan_latency_ms: float = 8.0,
    ) -> None:
        self.simulator = Simulator(seed=seed)
        self.network = Network(self.simulator, LinkSpec(latency_ms=0.2, jitter_ms=0.05))
        self.trace = EventLog(now_fn=lambda: self.simulator.now)
        self.grid = build_radial_grid(num_substations=num_substations, seed=seed)
        self.token = f"scada-secret-{seed}"
        master_names = ["master:primary"] + (["master:backup"] if with_backup else [])
        devices = []
        self.rtus: Dict[str, RtuDevice] = {}
        for unit_id, substation in enumerate(sorted(self.grid.substations), start=1):
            rtu = RtuDevice(
                f"rtu:{substation}", self.simulator, self.network,
                self.grid, substation, unit_id,
            )
            self.rtus[substation] = rtu
            devices.append((substation, rtu.name, unit_id, tuple(rtu.coil_ids())))
        self.proxy = TraditionalProxy(
            "tproxy:field", self.simulator, self.network, self.token,
            masters=master_names, devices=devices,
            poll_interval_ms=poll_interval_ms,
        )
        self.primary = TraditionalMaster(
            "master:primary", self.simulator, self.network, self.token,
            proxies=[self.proxy.name], is_primary=True,
            peer_master="master:backup" if with_backup else None,
        )
        self.backup: Optional[TraditionalMaster] = None
        if with_backup:
            self.backup = TraditionalMaster(
                "master:backup", self.simulator, self.network, self.token,
                proxies=[self.proxy.name], is_primary=False,
                peer_master="master:primary",
            )
        # WAN link between control center (masters) and the field site
        for master in master_names:
            self.network.set_link(
                master, self.proxy.name, LinkSpec(latency_ms=wan_latency_ms, jitter_ms=0.5)
            )

    def start(self) -> None:
        self.primary.start()
        if self.backup is not None:
            self.backup.start()
        self.proxy.start()

    def run_for(self, duration_ms: float) -> None:
        self.simulator.run_for(duration_ms)
