"""Comparison systems: traditional SCADA (single/hot-standby master)."""

from .traditional import (
    TCommand,
    THeartbeat,
    TraditionalDeployment,
    TraditionalMaster,
    TraditionalProxy,
    TStatus,
)

__all__ = [
    "TCommand",
    "THeartbeat",
    "TraditionalDeployment",
    "TraditionalMaster",
    "TraditionalProxy",
    "TStatus",
]
