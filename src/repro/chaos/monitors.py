"""Runtime invariant monitors.

Each monitor watches one of the correctness properties from DESIGN.md §5
*while a simulation runs* (or, for the bounded-delay watchdog, evaluates
the run's delivery record afterwards). Monitors are strictly observers:
they wrap component hook points but never alter message flow, timing, or
randomness, so an instrumented run produces the identical trace to an
uninstrumented one.

Monitored invariants:

* **Safety** — no two replicas execute different updates at the same
  global order index.
* **Proxy gate** — an endpoint acts on a delivery only once it holds a
  combined threshold signature that independently re-verifies, and never
  acts on the same record twice; a proxy writes to field devices only for
  gate-verified commands.
* **Quorum availability** — proactive rejuvenation never takes a replica
  down when that would leave fewer than ``2f+k+1`` live replicas.
* **Bounded delay** — outside fault windows (plus a grace period for
  re-stabilization, budgeted at one view change), verified deliveries keep
  arriving with bounded gaps.
* **Reroute bound** — with the self-healing overlay enabled, every
  overlay fault (link kill/degrade, daemon kill) is routed around fast
  enough that a verified delivery lands within the configured
  detection + reroute budget of the fault start.
* **View recovery** — after every leader-affecting fault (leader kill /
  leader partition), a quorum of replicas adopts a strictly higher view
  and ordering resumes (a verified delivery lands) within the configured
  ``view_recovery_bound_ms`` budget.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..crypto.encoding import digest
from ..crypto.provider import CryptoProvider
from ..prime.messages import ClientUpdate
from ..simnet import Process, Simulator

__all__ = [
    "Violation",
    "SafetyMonitor",
    "ProxyGateMonitor",
    "QuorumAvailabilityMonitor",
    "QuorumFloorMonitor",
    "BoundedDelayMonitor",
    "RerouteBoundMonitor",
    "ViewRecoveryMonitor",
]


@dataclass(frozen=True)
class Violation:
    """One invariant violation, serializable into scenario files."""

    monitor: str
    kind: str
    time_ms: float
    details: Tuple[Tuple[str, Any], ...] = ()

    def to_dict(self) -> Dict[str, Any]:
        return {
            "monitor": self.monitor,
            "kind": self.kind,
            "time_ms": self.time_ms,
            "details": {key: value for key, value in self.details},
        }

    @staticmethod
    def from_dict(data: Dict[str, Any]) -> "Violation":
        return Violation(
            monitor=data["monitor"],
            kind=data["kind"],
            time_ms=data["time_ms"],
            details=tuple(sorted(data.get("details", {}).items())),
        )

    def __str__(self) -> str:  # pragma: no cover - debug aid
        detail = " ".join(f"{k}={v}" for k, v in self.details)
        return f"[t={self.time_ms:10.1f}ms] {self.monitor}/{self.kind} {detail}"


class _BaseMonitor:
    name = "monitor"

    #: optional ``repro.obs`` counter mirroring the violation count.
    #: Monitors never emit trace *events* — the trace feeds the chaos
    #: fingerprint and must stay identical with monitors detached.
    _obs_violations = None

    def __init__(self, simulator: Simulator) -> None:
        self.simulator = simulator
        self._violations: List[Violation] = []

    def bind_obs(self, obs) -> None:
        """Mirror violation counts into a metric registry."""
        if obs is not None and getattr(obs, "enabled", False):
            self._obs_violations = obs.counter(f"chaos.violations.{self.name}")

    def violations(self) -> List[Violation]:
        return list(self._violations)

    def _flag(self, kind: str, **details: Any) -> None:
        if self._obs_violations is not None:
            self._obs_violations.inc()
        self._violations.append(Violation(
            self.name, kind, self.simulator.now,
            tuple(sorted((str(k), v) for k, v in details.items())),
        ))


class SafetyMonitor(_BaseMonitor):
    """Agreement and exactly-once over the global execution order.

    Hooks every replica's execution listener and cross-checks the identity
    digest of the update executed at each order index (agreement), and
    that no update identity is ever assigned two *different* order
    indices (exactly-once: a view change re-proposing an in-flight batch
    must not order its updates a second time; replaying the same slot
    after a crash recovery is fine). ``exclude`` names replicas under
    Byzantine control in the scenario (their divergence is expected, the
    invariant covers correct replicas only).
    """

    name = "safety"

    def __init__(self, simulator: Simulator, exclude: Sequence[str] = ()) -> None:
        super().__init__(simulator)
        self.exclude = frozenset(exclude)
        #: order index -> (identity digest, first replica that reported it)
        self._executed: Dict[int, Tuple[str, str]] = {}
        #: identity digest -> first order index it was executed at
        self._index_of: Dict[str, int] = {}
        self._dup_flagged: set = set()
        self.checked = 0

    def attach(self, replicas: Sequence[Any]) -> None:
        for replica in replicas:
            if replica.name in self.exclude:
                continue
            replica.execution_listeners.append(self._listener_for(replica.name))

    def _listener_for(self, replica_name: str):
        def on_execute(update: ClientUpdate, order_index: int, result: Any) -> None:
            identity = digest(
                (update.client, update.client_seq, digest(update.payload))
            )
            self.checked += 1
            first = self._executed.get(order_index)
            if first is None:
                self._executed[order_index] = (identity, replica_name)
            elif first[0] != identity:
                self._flag(
                    "divergent-execution",
                    order_index=order_index,
                    first_replica=first[1],
                    second_replica=replica_name,
                    client=update.client,
                    client_seq=update.client_seq,
                )
            seen_at = self._index_of.get(identity)
            if seen_at is None:
                self._index_of[identity] = order_index
            elif seen_at != order_index and \
                    (identity, order_index) not in self._dup_flagged:
                self._dup_flagged.add((identity, order_index))
                self._flag(
                    "duplicate-execution",
                    first_index=seen_at,
                    second_index=order_index,
                    replica=replica_name,
                    client=update.client,
                    client_seq=update.client_seq,
                )
        return on_execute


class ProxyGateMonitor(_BaseMonitor):
    """No delivery is acted on without a valid threshold signature.

    Wraps each endpoint's share collector: whenever the collector reports
    a combined record, the monitor *independently* re-verifies the
    signature (so a weakened or bypassed gate is caught, not trusted) and
    checks the record was not already acted on. On proxies it additionally
    wraps the command execution path: every field write must correspond to
    a previously gate-verified breaker command.
    """

    name = "proxy-gate"

    def __init__(self, simulator: Simulator, crypto: CryptoProvider) -> None:
        super().__init__(simulator)
        self.crypto = crypto
        self._acted: Dict[str, set] = {}
        self._verified_commands: Dict[str, set] = {}
        self.deliveries_checked = 0
        self.commands_checked = 0

    def attach(self, endpoint: Process) -> None:
        acted = self._acted.setdefault(endpoint.name, set())
        verified_cmds = self._verified_commands.setdefault(endpoint.name, set())
        collector = endpoint.collector
        original_add = collector.add

        def checked_add(share):
            result = original_add(share)
            if result is not None:
                record, signature = result
                self.deliveries_checked += 1
                if not self.crypto.threshold_verify(signature, record):
                    self._flag(
                        "unverified-delivery",
                        endpoint=endpoint.name,
                        client=record.client,
                        client_seq=record.client_seq,
                    )
                key = record.key()
                if key in acted:
                    self._flag(
                        "duplicate-delivery",
                        endpoint=endpoint.name,
                        client=record.client,
                        client_seq=record.client_seq,
                    )
                acted.add(key)
                if record.kind == "command":
                    verified_cmds.add(digest(record.payload))
            return result

        collector.add = checked_add

        execute = getattr(endpoint, "_execute_command", None)
        if execute is not None:
            def checked_execute(command):
                self.commands_checked += 1
                if digest(command) not in verified_cmds:
                    self._flag(
                        "ungated-field-command",
                        endpoint=endpoint.name,
                        substation=command.substation,
                        breaker=command.breaker_id,
                    )
                execute(command)

            endpoint._execute_command = checked_execute


class QuorumAvailabilityMonitor(_BaseMonitor):
    """Rejuvenation must degrade gracefully, never below ``min_live``.

    Tracks the exact live-replica count by wrapping crash/recover, and
    wraps the recovery scheduler's begin hook: starting a rejuvenation
    that would leave ``live - 1 < min_live`` replicas is a violation (the
    scheduler is expected to defer instead).
    """

    name = "quorum-availability"

    def __init__(
        self,
        simulator: Simulator,
        replicas: Sequence[Process],
        min_live: int,
    ) -> None:
        super().__init__(simulator)
        self.replicas = list(replicas)
        self.min_live = min_live
        self.min_live_seen = len(self.replicas)
        #: (time_ms, live_count) step timeline, for reports
        self.timeline: List[Tuple[float, int]] = []

    @property
    def live_count(self) -> int:
        return sum(1 for replica in self.replicas if replica.is_up)

    def attach(self, scheduler: Optional[Any] = None) -> None:
        for replica in self.replicas:
            self._wrap_liveness(replica)
        if scheduler is not None:
            begin = scheduler._begin

            def guarded_begin(replica):
                if self.live_count - 1 < self.min_live:
                    self._flag(
                        "rejuvenation-below-quorum",
                        replica=replica.name,
                        live=self.live_count,
                        min_live=self.min_live,
                    )
                begin(replica)

            scheduler._begin = guarded_begin

    def _wrap_liveness(self, replica: Process) -> None:
        crash, recover = replica.crash, replica.recover

        def crash_wrapped():
            crash()
            self._record()

        def recover_wrapped():
            recover()
            self._record()

        replica.crash = crash_wrapped
        replica.recover = recover_wrapped

    def _record(self) -> None:
        live = self.live_count
        self.min_live_seen = min(self.min_live_seen, live)
        self.timeline.append((self.simulator.now, live))


class QuorumFloorMonitor(_BaseMonitor):
    """No recovery *strategy* ever rejuvenates below the ``2f+k+1`` floor.

    Strategy-agnostic sibling of :class:`QuorumAvailabilityMonitor`: the
    floor is computed independently from the resilience parameters (so a
    misconfigured ``min_live`` is caught, not trusted), and the hook wraps
    whatever :class:`~repro.core.recovery.RecoveryStrategy` the deployment
    runs — periodic rotation or the ``repro.control`` feedback controller.
    Every strategy-initiated rejuvenation start is checked: beginning one
    with ``live - 1 < 2f+k+1`` is a violation (the strategy must defer).
    """

    name = "quorum-floor"

    def __init__(
        self,
        simulator: Simulator,
        replicas: Sequence[Process],
        f: int,
        k: int,
    ) -> None:
        super().__init__(simulator)
        self.replicas = list(replicas)
        #: the ordering quorum — the paper's hard availability floor
        self.floor = 2 * f + k + 1
        self.rejuvenations_checked = 0

    @property
    def live_count(self) -> int:
        return sum(1 for replica in self.replicas if replica.is_up)

    def attach(self, strategy: Optional[Any]) -> None:
        if strategy is None:
            return
        begin = strategy._begin

        def floor_checked_begin(replica):
            self.rejuvenations_checked += 1
            if self.live_count - 1 < self.floor:
                self._flag(
                    "recovery-below-floor",
                    replica=replica.name,
                    live=self.live_count,
                    floor=self.floor,
                    strategy=type(strategy).__name__,
                )
            begin(replica)

        strategy._begin = floor_checked_begin


class BoundedDelayMonitor(_BaseMonitor):
    """Verified deliveries keep flowing outside fault windows.

    The paper's bounded-delay claim is conditional on the network: during
    an attack window latency may spike, but once the window closes the
    system must re-bound within at most one view change. The watchdog
    therefore checks, for every *quiet interval* (no scheduled fault
    active, extended by a grace period that budgets a view-change timeout
    plus settling), that consecutive verified deliveries are never more
    than ``max_gap_ms`` apart.
    """

    name = "bounded-delay"

    def __init__(self, simulator: Simulator, max_gap_ms: float) -> None:
        super().__init__(simulator)
        self.max_gap_ms = max_gap_ms
        self.quiet_checked_ms = 0.0

    def evaluate(
        self,
        delivery_times: Sequence[float],
        quiet_intervals: Sequence[Tuple[float, float]],
    ) -> None:
        """Post-run check of the delivery timeline against quiet windows."""
        times = sorted(delivery_times)
        for start, end in quiet_intervals:
            if end - start <= self.max_gap_ms:
                continue  # window too short to demand a delivery
            self.quiet_checked_ms += end - start
            inside = [t for t in times if start <= t <= end]
            previous = start
            for point in inside + [end]:
                if point - previous > self.max_gap_ms:
                    if self._obs_violations is not None:
                        self._obs_violations.inc()
                    self._violations.append(Violation(
                        self.name, "delivery-stall", previous,
                        (
                            ("gap_ms", round(point - previous, 3)),
                            ("max_gap_ms", self.max_gap_ms),
                            ("quiet_start_ms", round(start, 3)),
                            ("quiet_end_ms", round(end, 3)),
                        ),
                    ))
                    break  # one violation per quiet window is enough signal
                previous = point


class RerouteBoundMonitor(_BaseMonitor):
    """Self-healing overlay restores delivery within the reroute bound.

    For every overlay fault (link kill/degrade, daemon kill) that leaves
    enough run time to judge it, a self-healing overlay must produce at
    least one verified delivery within ``bound_ms`` of the fault start —
    the configured detection + reroute budget plus protocol settling.
    Evaluated post-run from the delivery timeline, like the bounded-delay
    watchdog.
    """

    name = "reroute-bound"

    def __init__(self, simulator: Simulator, bound_ms: float) -> None:
        super().__init__(simulator)
        self.bound_ms = bound_ms
        self.faults_checked = 0

    def evaluate(
        self,
        delivery_times: Sequence[float],
        fault_starts: Sequence[float],
        total_ms: float,
    ) -> None:
        """Check each overlay fault start against the delivery timeline."""
        times = sorted(delivery_times)
        for start in fault_starts:
            if start + self.bound_ms > total_ms:
                continue  # run ends before the bound can be judged
            self.faults_checked += 1
            recovered = any(start <= t <= start + self.bound_ms for t in times)
            if not recovered:
                if self._obs_violations is not None:
                    self._obs_violations.inc()
                self._violations.append(Violation(
                    self.name, "reroute-stall", start,
                    (
                        ("bound_ms", self.bound_ms),
                        ("fault_start_ms", round(start, 3)),
                    ),
                ))


class ViewRecoveryMonitor(_BaseMonitor):
    """Every leader-affecting fault yields a higher view within the bound.

    The view-change sibling of :class:`RerouteBoundMonitor`: for every
    ``leader_kill``/``leader_partition`` fault (noted by the engine at
    *fire* time, together with the resolved target and the cluster's view
    at that instant), the protocol must — within ``bound_ms`` —

    1. have a **quorum** of replicas adopt a view strictly higher than the
       fire-time baseline (``no-quorum-adoption`` otherwise), and
    2. **resume ordering**: produce at least one verified delivery no
       earlier than the quorum adoption point (``ordering-stalled``
       otherwise).

    Adoption times come from the ``EV_NEW_VIEW``/``EV_PBFT_NEW_VIEW``
    event stream post-run; like the other timeline monitors, faults whose
    budget extends past the end of the run are skipped, not judged.
    """

    name = "view-recovery"

    def __init__(self, simulator: Simulator, bound_ms: float, quorum: int) -> None:
        super().__init__(simulator)
        self.bound_ms = bound_ms
        self.quorum = quorum
        #: (fire_time_ms, resolved_target, baseline_view) per leader fault
        self._faults: List[Tuple[float, str, int]] = []
        self.faults_checked = 0
        #: kill -> quorum-adoption latency for each judged fault that
        #: reached quorum (feeds benchmarks/bench_viewchange.py)
        self.recovery_latencies_ms: List[float] = []

    def note_fault(self, target: str, baseline_view: int) -> None:
        """Record one leader-affecting fault at the instant it fires."""
        self._faults.append((self.simulator.now, target, baseline_view))

    @property
    def faults_noted(self) -> List[Tuple[float, str, int]]:
        return list(self._faults)

    def evaluate(
        self,
        adoptions: Sequence[Tuple[float, str, int]],
        delivery_times: Sequence[float],
        total_ms: float,
    ) -> None:
        """Judge each noted fault against the adoption/delivery timelines.

        ``adoptions`` is the new-view event timeline as ``(time_ms,
        replica, adopted_view)`` tuples; ``delivery_times`` is the verified
        delivery timeline.
        """
        times = sorted(delivery_times)
        for start, target, baseline in self._faults:
            deadline = start + self.bound_ms
            if deadline > total_ms:
                continue  # run ends before the bound can be judged
            self.faults_checked += 1
            # Earliest in-window adoption of a higher view, per replica.
            earliest: Dict[str, float] = {}
            for when, replica, view in adoptions:
                if view <= baseline or when < start or when > deadline:
                    continue
                if replica not in earliest or when < earliest[replica]:
                    earliest[replica] = when
            if len(earliest) < self.quorum:
                self._violations.append(Violation(
                    self.name, "no-quorum-adoption", start,
                    (
                        ("adopted", len(earliest)),
                        ("baseline_view", baseline),
                        ("bound_ms", self.bound_ms),
                        ("quorum", self.quorum),
                        ("target", target),
                    ),
                ))
                if self._obs_violations is not None:
                    self._obs_violations.inc()
                continue
            quorum_at = sorted(earliest.values())[self.quorum - 1]
            self.recovery_latencies_ms.append(quorum_at - start)
            resumed = any(quorum_at <= t <= deadline for t in times)
            if not resumed:
                self._violations.append(Violation(
                    self.name, "ordering-stalled", start,
                    (
                        ("bound_ms", self.bound_ms),
                        ("quorum_adopted_at_ms", round(quorum_at, 3)),
                        ("target", target),
                    ),
                ))
                if self._obs_violations is not None:
                    self._obs_violations.inc()
