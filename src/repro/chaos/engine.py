"""The chaos engine: seeded fault schedules + invariant monitors, one run.

One :class:`ChaosEngine` run is a pure function of ``(options, schedule,
mutator)``: it builds a full Spire deployment, applies the fault schedule
against the virtual clock, attaches every invariant monitor, runs, and
returns a :class:`ChaosResult` carrying the monitor verdicts and a trace
*fingerprint* — a digest over the structured trace, network counters and
final replica state. Two runs of the same ``(seed, schedule)`` produce
byte-identical fingerprints; that property is what makes dumped scenarios
replayable and shrinkable.

Each fault action draws from its own named RNG stream
(``chaos/<kind>/<index>``), so removing one action during shrinking never
perturbs the randomness of the others.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..attacks.dos import LeaderChaser
from ..control import ControlOptions
from ..core.batching import BatchingOptions
from ..core.deployment import SpireDeployment, SpireOptions
from ..crypto.encoding import digest
from ..obs import (
    COMP_CHAOS,
    COMP_RECOVERY_SCHEDULER,
    EV_FAULT_SCHEDULED,
    EV_NEW_VIEW,
    EV_REJUVENATE_DONE,
    EV_REJUVENATE_START,
)
from ..simnet import DosAttack, FailureInjector
from ..spines import SpinesDaemon
from .generator import ChaosProfile, generate_schedule
from .monitors import (
    BoundedDelayMonitor,
    ProxyGateMonitor,
    QuorumAvailabilityMonitor,
    QuorumFloorMonitor,
    RerouteBoundMonitor,
    SafetyMonitor,
    ViewRecoveryMonitor,
    Violation,
)
from .schedule import FaultAction, FaultSchedule

__all__ = [
    "ChaosOptions", "ChaosResult", "ChaosEngine",
    "OVERLAY_FAULT_KINDS", "LEADER_FAULT_KINDS",
]

#: fault kinds whose targets are overlay *site* names; the engine maps
#: them to spines daemon processes and the reroute monitor judges them
OVERLAY_FAULT_KINDS = frozenset({"link_kill", "link_degrade", "daemon_kill"})

#: fault kinds resolved against the *current* leader at fire time; the
#: view-recovery monitor judges each one
LEADER_FAULT_KINDS = frozenset({"leader_kill", "leader_partition"})

#: deployment mutator applied before monitors attach (test-only hooks that
#: deliberately weaken a component to prove the monitors catch it)
Mutator = Callable[[SpireDeployment], None]


@dataclass(frozen=True)
class ChaosOptions:
    """Everything that, together with a schedule, defines one chaos run."""

    seed: int = 1
    f: int = 1
    k: int = 1
    num_substations: int = 2
    warmup_ms: float = 1000.0
    chaos_ms: float = 6000.0
    settle_ms: float = 3000.0
    poll_interval_ms: float = 150.0
    resubmit_timeout_ms: float = 400.0
    overlay_mode: str = "shortest"
    #: enable the Spines self-healing control plane for this run
    self_healing: bool = False
    #: overload-protection knobs passed through to the overlay daemons
    overlay_queue_limit: int = 0
    overlay_rate_limit_per_ms: float = 0.0
    #: with self-healing on, each overlay fault must see a verified
    #: delivery within this bound of its start (detection + reroute +
    #: protocol settling); checked by :class:`RerouteBoundMonitor`
    reroute_bound_ms: float = 1500.0
    prime_preset: str = "wan"
    #: (period_ms, duration_ms); None disables proactive recovery
    proactive_recovery: Optional[Tuple[float, float]] = (4000.0, 500.0)
    #: run proactive recovery under the ``repro.control`` feedback
    #: controller (default-off: the periodic schedule, bit-identical)
    feedback_control: bool = False
    #: controller knob overrides, serialized with the scenario; None with
    #: ``feedback_control=True`` uses :class:`~repro.control.ControlOptions`
    #: defaults
    control_overrides: Optional[Dict[str, Any]] = None
    #: bounded-delay watchdog: max gap between verified deliveries in a
    #: quiet interval (generous: covers resubmit backoff + one view change)
    max_delivery_gap_ms: float = 2000.0
    #: how long after a fault window ends before the system must be
    #: re-bounded (budget: one view-change timeout plus settling)
    quiet_grace_ms: float = 2500.0
    #: every leader-affecting fault must see a quorum adopt a higher view
    #: *and* a verified delivery within this bound of the fault firing
    #: (TAT suspicion + view-change round + settling); checked by
    #: :class:`ViewRecoveryMonitor`
    view_recovery_bound_ms: float = 3000.0
    #: draw ``leader_kill``/``leader_partition`` faults into generated
    #: schedules (default-off: existing seeds stay byte-identical) and
    #: turn on the view-change hardening they require
    leader_faults: bool = False
    #: harden the Prime view-change path (VC/new-view retransmission,
    #: strict state-transfer view adoption) independently of whether the
    #: schedule targets leaders; implied by ``leader_faults``
    view_change_hardening: bool = False
    #: run with delivery batching enabled (PR 7's ``BatchingOptions``)
    batching: bool = False
    min_actions: int = 3
    max_actions: int = 8

    @property
    def total_ms(self) -> float:
        return self.warmup_ms + self.chaos_ms + self.settle_ms

    def to_dict(self) -> Dict[str, Any]:
        data = dataclasses.asdict(self)
        if data["proactive_recovery"] is not None:
            data["proactive_recovery"] = list(data["proactive_recovery"])
        return data

    @staticmethod
    def from_dict(data: Dict[str, Any]) -> "ChaosOptions":
        names = {f.name for f in dataclasses.fields(ChaosOptions)}
        kwargs = {key: value for key, value in data.items() if key in names}
        if kwargs.get("proactive_recovery") is not None:
            kwargs["proactive_recovery"] = tuple(kwargs["proactive_recovery"])
        return ChaosOptions(**kwargs)


#: stat keys that measure the *host* (wall clock), not the simulation —
#: excluded from deterministic dumps, fingerprints and replay comparison,
#: mirroring the ``ScenarioReport`` convention from PR 5
HOST_STAT_KEYS = frozenset({"wall_runtime_s"})


@dataclass
class ChaosResult:
    """Outcome of one chaos run."""

    options: ChaosOptions
    schedule: FaultSchedule
    violations: List[Violation]
    fingerprint: str
    stats: Dict[str, Any]
    injector_log: List[str] = field(default_factory=list)
    #: deterministic-only ``Observability.snapshot()`` image of the run's
    #: deployment, carried so campaign aggregation can merge per-scenario
    #: observability without holding live simulator handles
    obs_snapshot: Optional[Dict[str, Any]] = None

    @property
    def ok(self) -> bool:
        return not self.violations

    @property
    def deterministic_stats(self) -> Dict[str, Any]:
        """The stats minus host-dependent entries (wall-clock timing)."""
        return {
            key: value for key, value in self.stats.items()
            if key not in HOST_STAT_KEYS
        }

    def to_dict(self) -> Dict[str, Any]:
        return {
            "options": self.options.to_dict(),
            "schedule": self.schedule.to_list(),
            "violations": [v.to_dict() for v in self.violations],
            "fingerprint": self.fingerprint,
            "stats": self.deterministic_stats,
        }


class ChaosEngine:
    """Runs one ``(options, schedule)`` scenario with monitors attached."""

    def __init__(
        self,
        options: Optional[ChaosOptions] = None,
        schedule: Optional[FaultSchedule] = None,
        mutator: Optional[Mutator] = None,
    ) -> None:
        self.options = options or ChaosOptions()
        self.schedule = schedule
        self.mutator = mutator

    # ------------------------------------------------------------------
    def run(self) -> ChaosResult:
        opts = self.options
        control: Optional[ControlOptions] = None
        if opts.feedback_control:
            control = (
                ControlOptions.from_dict(opts.control_overrides)
                if opts.control_overrides is not None else ControlOptions()
            )
        deployment = SpireDeployment(SpireOptions(
            f=opts.f,
            k=opts.k,
            num_substations=opts.num_substations,
            poll_interval_ms=opts.poll_interval_ms,
            resubmit_timeout_ms=opts.resubmit_timeout_ms,
            overlay_mode=opts.overlay_mode,
            overlay_self_healing=opts.self_healing,
            overlay_queue_limit=opts.overlay_queue_limit,
            overlay_rate_limit_per_ms=opts.overlay_rate_limit_per_ms,
            prime_preset=opts.prime_preset,
            seed=opts.seed,
            proactive_recovery=opts.proactive_recovery,
            control=control,
            batching=BatchingOptions(enabled=True) if opts.batching else None,
            view_change_hardening=(
                opts.view_change_hardening or opts.leader_faults
            ),
        ))
        replica_names = deployment.replica_names()
        endpoints = [deployment.proxy.name] + [h.name for h in deployment.hmis]

        schedule = self.schedule
        if schedule is None:
            kinds = ChaosProfile().kinds
            if opts.leader_faults:
                kinds = kinds + ("leader_kill", "leader_kill", "leader_partition")
            profile = ChaosProfile(
                window_start_ms=opts.warmup_ms,
                window_end_ms=opts.warmup_ms + opts.chaos_ms,
                min_actions=opts.min_actions,
                max_actions=opts.max_actions,
                max_concurrent_crashes=max(1, opts.f),
                max_partition_minority=max(1, opts.f),
                kinds=kinds,
            )
            schedule = generate_schedule(
                opts.seed, replica_names, endpoints=endpoints, profile=profile,
            )
            self.schedule = schedule

        if self.mutator is not None:
            self.mutator(deployment)

        # --- monitors -------------------------------------------------
        safety = SafetyMonitor(deployment.simulator)
        safety.attach(deployment.replicas)
        gate = ProxyGateMonitor(deployment.simulator, deployment.crypto)
        gate.attach(deployment.proxy)
        for hmi in deployment.hmis:
            gate.attach(hmi)
        quorum = QuorumAvailabilityMonitor(
            deployment.simulator, deployment.replicas,
            min_live=deployment.prime_config.quorum,
        )
        quorum.attach(deployment.recovery_scheduler)
        floor = QuorumFloorMonitor(
            deployment.simulator, deployment.replicas, f=opts.f, k=opts.k,
        )
        floor.attach(deployment.recovery_scheduler)
        watchdog = BoundedDelayMonitor(
            deployment.simulator, max_gap_ms=opts.max_delivery_gap_ms,
        )
        reroute: Optional[RerouteBoundMonitor] = None
        if opts.self_healing:
            reroute = RerouteBoundMonitor(
                deployment.simulator, bound_ms=opts.reroute_bound_ms,
            )
        view_recovery = ViewRecoveryMonitor(
            deployment.simulator,
            bound_ms=opts.view_recovery_bound_ms,
            quorum=deployment.prime_config.quorum,
        )
        monitors = [safety, gate, quorum, floor, watchdog, view_recovery]
        if reroute is not None:
            monitors.append(reroute)
        for monitor in monitors:
            monitor.bind_obs(deployment.obs)

        # --- fault schedule -------------------------------------------
        injector = FailureInjector(deployment.simulator, deployment.network)
        chasers: List[LeaderChaser] = []
        for index, action in enumerate(schedule):
            self._apply(action, index, deployment, injector, chasers,
                        view_recovery)

        # --- run ------------------------------------------------------
        deployment.start()
        deployment.run_for(opts.total_ms)

        # --- post-run checks ------------------------------------------
        delivery_times = [at for at, _ in deployment.status_recorder.samples]
        watchdog.evaluate(
            delivery_times,
            self._quiet_intervals(schedule, deployment),
        )
        if reroute is not None:
            reroute.evaluate(
                delivery_times,
                [action.start_ms for action in schedule
                 if action.kind in OVERLAY_FAULT_KINDS],
                opts.total_ms,
            )
        adoptions = [
            (event.time, event.component, int(event.details.get("view", -1)))
            for event in deployment.trace.events(None, EV_NEW_VIEW)
        ]
        view_recovery.evaluate(adoptions, delivery_times, opts.total_ms)

        violations: List[Violation] = []
        for monitor in monitors:
            violations.extend(monitor.violations())
        violations.sort(key=lambda v: (v.time_ms, v.monitor, v.kind))

        stats = self._stats(deployment, safety, gate, quorum, watchdog)
        stats["wall_runtime_s"] = round(deployment.wall_runtime_s, 4)
        stats["fault_kinds"] = sorted({action.kind for action in schedule})
        stats["floor_rejuvenations_checked"] = floor.rejuvenations_checked
        stats["view_faults_checked"] = view_recovery.faults_checked
        stats["view_recovery_latencies_ms"] = [
            round(latency, 3) for latency in view_recovery.recovery_latencies_ms
        ]
        if reroute is not None:
            stats["reroute_faults_checked"] = reroute.faults_checked
            if deployment.overlay.control_plane is not None:
                stats["overlay_reroutes"] = (
                    deployment.overlay.control_plane.reroutes
                )
        fingerprint = self._fingerprint(deployment, violations)
        return ChaosResult(
            options=opts,
            schedule=schedule,
            violations=violations,
            fingerprint=fingerprint,
            stats=stats,
            injector_log=injector.log,
            obs_snapshot=deployment.obs.snapshot(deterministic_only=True),
        )

    # ------------------------------------------------------------------
    # Fault application
    # ------------------------------------------------------------------
    def _apply(
        self,
        action: FaultAction,
        index: int,
        deployment: SpireDeployment,
        injector: FailureInjector,
        chasers: List[LeaderChaser],
        view_recovery: Optional[ViewRecoveryMonitor] = None,
    ) -> None:
        stream = f"chaos/{action.kind}/{index}"
        kind = action.kind
        # Deterministic per (seed, schedule): emitted at sim time 0 with
        # content drawn only from the schedule, so it is fingerprint-safe.
        deployment.obs.event(
            COMP_CHAOS, EV_FAULT_SCHEDULED,
            index=index, fault=kind, targets=",".join(action.targets),
            start_ms=action.start_ms, duration_ms=action.duration_ms,
        )
        if kind == "crash":
            for target in action.targets:
                injector.crash_window(target, action.start_ms, action.duration_ms)
        elif kind == "partition":
            # Site-access outage: each partitioned replica loses the link
            # to its overlay daemon (in an overlay deployment that *is*
            # the partition surface — replicas have no direct links).
            for target in action.targets:
                for daemon in deployment.dos_peers_of(target):
                    injector.partition_window(
                        [target], [daemon], action.start_ms, action.duration_ms,
                    )
        elif kind == "dos":
            for target in action.targets:
                injector.dos_node(
                    DosAttack(
                        target=target,
                        start_ms=action.start_ms,
                        duration_ms=action.duration_ms,
                        extra_delay_ms=action.param("extra_delay_ms", 300.0),
                        extra_loss=action.param("extra_loss", 0.2),
                    ),
                    peers=deployment.dos_peers_of(target),
                )
        elif kind == "leader_dos":
            chaser = LeaderChaser(
                deployment.simulator,
                deployment.network,
                leader_fn=deployment.current_leader,
                peers_fn=deployment.dos_peers_of,
                extra_delay_ms=action.param("extra_delay_ms", 300.0),
                extra_loss=action.param("extra_loss", 0.2),
                retarget_interval_ms=action.param("retarget_interval_ms", 1000.0),
            )
            chasers.append(chaser)
            deployment.simulator.schedule_at(action.start_ms, chaser.start)
            deployment.simulator.schedule_at(action.end_ms, chaser.stop)
        elif kind == "drop":
            injector.drop_messages(
                action.targets, action.start_ms, action.duration_ms,
                probability=action.param("probability", 0.3),
                rng_name=stream,
            )
        elif kind == "duplicate":
            injector.duplicate_messages(
                action.targets, action.start_ms, action.duration_ms,
                probability=action.param("probability", 0.3),
                rng_name=stream,
            )
        elif kind == "reorder":
            injector.reorder_window(
                action.targets, action.start_ms, action.duration_ms,
                window_ms=action.param("window_ms", 20.0),
                probability=action.param("probability", 1.0),
                rng_name=stream,
            )
        elif kind == "delay_spike":
            injector.delay_spike(
                action.targets, action.start_ms, action.duration_ms,
                extra_ms=action.param("extra_ms", 100.0),
                jitter_ms=action.param("jitter_ms", 0.0),
                probability=action.param("probability", 1.0),
                rng_name=stream,
            )
        elif kind == "corrupt":
            injector.corrupt_payload(
                action.targets, action.start_ms, action.duration_ms,
                probability=action.param("probability", 0.2),
                rng_name=stream,
            )
        elif kind == "slow_node":
            for target in action.targets:
                injector.slow_node(
                    target, action.start_ms, action.duration_ms,
                    extra_delay_ms=action.param("extra_delay_ms", 50.0),
                )
        elif kind == "asym_link":
            source = action.targets[0]
            for daemon in deployment.dos_peers_of(source):
                injector.asym_link_window(
                    source, daemon, action.start_ms, action.duration_ms,
                    extra_delay_ms=action.param("extra_delay_ms", 100.0),
                    extra_loss=action.param("extra_loss", 0.0),
                )
        elif kind == "jitter_storm":
            injector.jitter_storm(
                action.targets, action.start_ms, action.duration_ms,
                max_extra_ms=action.param("max_extra_ms", 30.0),
                probability=action.param("probability", 0.5),
                rng_name=stream,
            )
        elif kind == "link_kill":
            site_a, site_b = action.targets
            injector.block_link_window(
                SpinesDaemon.daemon_name(site_a),
                SpinesDaemon.daemon_name(site_b),
                action.start_ms, action.duration_ms,
            )
        elif kind == "link_degrade":
            site_a, site_b = action.targets
            injector.dos_link_window(
                SpinesDaemon.daemon_name(site_a),
                SpinesDaemon.daemon_name(site_b),
                action.start_ms, action.duration_ms,
                extra_delay_ms=action.param("extra_delay_ms", 200.0),
                extra_loss=action.param("extra_loss", 0.1),
            )
        elif kind == "daemon_kill":
            for site in action.targets:
                injector.crash_window(
                    SpinesDaemon.daemon_name(site),
                    action.start_ms, action.duration_ms,
                )
        elif kind == "leader_kill":
            def resolve_leader() -> str:
                target = deployment.current_leader()
                if view_recovery is not None:
                    view_recovery.note_fault(target, deployment.current_view())
                return target

            injector.crash_resolved_window(
                resolve_leader, action.start_ms, action.duration_ms,
                label="LEADER-KILL",
            )
        elif kind == "leader_partition":
            def resolve_groups() -> Tuple[List[str], List[str]]:
                target = deployment.current_leader()
                if view_recovery is not None:
                    view_recovery.note_fault(target, deployment.current_view())
                # In an overlay deployment the access link to the local
                # daemon IS the leader's connectivity surface.
                return [target], list(deployment.dos_peers_of(target))

            injector.partition_resolved_window(
                resolve_groups, action.start_ms, action.duration_ms,
                label="LEADER-PARTITION",
            )

    # ------------------------------------------------------------------
    # Bounded-delay quiet windows
    # ------------------------------------------------------------------
    def _quiet_intervals(
        self, schedule: FaultSchedule, deployment: SpireDeployment,
    ) -> List[Tuple[float, float]]:
        """Sub-intervals of the run with no fault active (plus grace).

        Scheduled fault windows *and* proactive-rejuvenation windows (read
        back from the trace, since deferral shifts them) suppress the
        watchdog; each suppression extends ``quiet_grace_ms`` past the
        window end to budget re-stabilization (at most one view change).
        """
        opts = self.options
        busy: List[Tuple[float, float]] = [
            (action.start_ms, action.end_ms + opts.quiet_grace_ms)
            for action in schedule
        ]
        starts = deployment.trace.events(
            COMP_RECOVERY_SCHEDULER, EV_REJUVENATE_START
        )
        ends = deployment.trace.events(COMP_RECOVERY_SCHEDULER, EV_REJUVENATE_DONE)
        for event in starts:
            done = min(
                (e.time for e in ends
                 if e.details.get("replica") == event.details.get("replica")
                 and e.time >= event.time),
                default=opts.total_ms,
            )
            busy.append((event.time, done + opts.quiet_grace_ms))
        busy.sort()
        quiet: List[Tuple[float, float]] = []
        cursor = opts.warmup_ms  # ignore cold-start before first deliveries
        for start, end in busy:
            if start > cursor:
                quiet.append((cursor, min(start, opts.total_ms)))
            cursor = max(cursor, end)
        if cursor < opts.total_ms:
            quiet.append((cursor, opts.total_ms))
        return [(s, e) for s, e in quiet if e > s]

    # ------------------------------------------------------------------
    # Result assembly
    # ------------------------------------------------------------------
    @staticmethod
    def _stats(deployment, safety, gate, quorum, watchdog) -> Dict[str, Any]:
        net = deployment.network.stats
        return {
            "events_processed": deployment.simulator.events_processed,
            "messages_sent": net.sent,
            "messages_delivered": net.delivered,
            "dropped_loss": net.dropped_loss,
            "dropped_filter": net.dropped_filter,
            "replica_views": [r.view for r in deployment.replicas],
            "last_executed": [r.last_executed_seq for r in deployment.replicas],
            "hmi_verified": deployment.hmis[0].collector.verified,
            "proxy_verified": deployment.proxy.collector.verified,
            "executions_checked": safety.checked,
            "deliveries_checked": gate.deliveries_checked,
            "min_live_seen": quorum.min_live_seen,
            "deferred_rejuvenations": (
                deployment.recovery_scheduler.deferred_rounds
                if deployment.recovery_scheduler is not None else 0
            ),
            "quiet_checked_ms": round(watchdog.quiet_checked_ms, 3),
            "trace_events": deployment.trace.count(),
            "trace_dropped": deployment.trace.dropped,
        }

    @staticmethod
    def _fingerprint(deployment, violations: List[Violation]) -> str:
        trace_image = tuple(
            (event.time, event.component, event.kind,
             tuple(sorted(event.details.items())))
            for event in deployment.trace
        )
        net = deployment.network.stats
        state_image = tuple(
            (replica.name, replica.view, replica.last_executed_seq,
             replica.executed_counter)
            for replica in deployment.replicas
        )
        violation_image = tuple(
            (v.monitor, v.kind, v.time_ms, v.details) for v in violations
        )
        return digest((
            trace_image,
            (net.sent, net.delivered, net.dropped_loss, net.dropped_partition,
             net.dropped_filter, net.dropped_down, net.bytes_sent),
            state_image,
            deployment.hmis[0].collector.verified,
            deployment.proxy.collector.verified,
            violation_image,
        ))
