"""Fault schedules: the serializable description of one chaos scenario.

A :class:`FaultSchedule` is an ordered tuple of :class:`FaultAction`
records. Together with the deployment options and the master seed it fully
determines a chaos run — the engine executes the schedule against the
virtual clock and every random choice inside the fault primitives flows
through named simulator RNG streams, so ``(seed, schedule)`` replays to an
identical trace.

Schedules are plain data (strings, numbers, tuples) by construction, which
is what makes them JSON-round-trippable for scenario files and hashable
for run fingerprints.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Tuple

__all__ = ["FaultAction", "FaultSchedule", "FAULT_KINDS"]

#: The fault taxonomy (see DESIGN.md): process faults, network partitions,
#: targeted DoS, message-level faults, and gray failures.
FAULT_KINDS = (
    "crash",          # crash a replica for a window, then recover it
    "partition",      # cut a minority group off from the rest
    "dos",            # degrade all access links of a fixed target
    "leader_dos",     # adaptive DoS that chases the current Prime leader
    "drop",           # drop matching messages with a probability
    "duplicate",      # deliver delayed second copies
    "reorder",        # buffer + shuffle matching messages per window
    "delay_spike",    # add a latency spike to matching messages
    "corrupt",        # mangle matching payloads in flight
    "slow_node",      # asymmetric slowdown of one node's outbound links
    "asym_link",      # one-directional link degradation
    "jitter_storm",   # random per-message extra delay (timer desync)
    # Overlay faults (targets are SITE names, not process names — the
    # engine maps them to spines daemon processes):
    "link_kill",      # sever one overlay link for a window
    "link_degrade",   # add delay/loss to one overlay link for a window
    "daemon_kill",    # crash one interior spines daemon for a window
    # Leader-targeted faults (targets are EMPTY at schedule time — the
    # engine resolves the *current* leader when the fault fires, so a
    # schedule replayed against a different protocol or seed still hits
    # whoever holds the leader role at that instant):
    "leader_kill",       # crash the current leader for a window
    "leader_partition",  # isolate the current leader from all peers
)


def _freeze(value: Any) -> Any:
    """Normalize JSON-decoded values back into hashable schedule data."""
    if isinstance(value, list):
        return tuple(_freeze(item) for item in value)
    return value


@dataclass(frozen=True)
class FaultAction:
    """One scheduled fault: what, when, against whom, and how hard."""

    kind: str
    start_ms: float
    duration_ms: float
    targets: Tuple[str, ...] = ()
    params: Tuple[Tuple[str, Any], ...] = ()

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind: {self.kind}")
        if self.duration_ms < 0 or self.start_ms < 0:
            raise ValueError("fault windows cannot be negative")
        object.__setattr__(self, "targets", tuple(self.targets))
        object.__setattr__(
            self, "params",
            tuple(sorted((str(k), _freeze(v)) for k, v in tuple(self.params))),
        )

    @property
    def end_ms(self) -> float:
        return self.start_ms + self.duration_ms

    def param(self, key: str, default: Any = None) -> Any:
        for name, value in self.params:
            if name == key:
                return value
        return default

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "start_ms": self.start_ms,
            "duration_ms": self.duration_ms,
            "targets": list(self.targets),
            "params": {name: value for name, value in self.params},
        }

    @staticmethod
    def from_dict(data: Dict[str, Any]) -> "FaultAction":
        return FaultAction(
            kind=data["kind"],
            start_ms=float(data["start_ms"]),
            duration_ms=float(data["duration_ms"]),
            targets=tuple(data.get("targets", ())),
            params=tuple(
                (key, _freeze(value))
                for key, value in dict(data.get("params", {})).items()
            ),
        )


@dataclass(frozen=True)
class FaultSchedule:
    """An ordered, immutable collection of fault actions."""

    actions: Tuple[FaultAction, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "actions",
            tuple(sorted(self.actions, key=lambda a: (a.start_ms, a.kind))),
        )

    def __len__(self) -> int:
        return len(self.actions)

    def __iter__(self):
        return iter(self.actions)

    @property
    def end_ms(self) -> float:
        return max((action.end_ms for action in self.actions), default=0.0)

    def subset(self, indices: Iterable[int]) -> "FaultSchedule":
        """Schedule containing only the actions at ``indices`` (shrinking)."""
        keep = set(indices)
        return FaultSchedule(tuple(
            action for index, action in enumerate(self.actions) if index in keep
        ))

    def without(self, indices: Iterable[int]) -> "FaultSchedule":
        drop = set(indices)
        return self.subset(i for i in range(len(self.actions)) if i not in drop)

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_list(self) -> List[Dict[str, Any]]:
        return [action.to_dict() for action in self.actions]

    @staticmethod
    def from_list(items: Iterable[Dict[str, Any]]) -> "FaultSchedule":
        return FaultSchedule(tuple(FaultAction.from_dict(item) for item in items))

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_list(), indent=indent, sort_keys=True)

    @staticmethod
    def from_json(text: str) -> "FaultSchedule":
        return FaultSchedule.from_list(json.loads(text))
