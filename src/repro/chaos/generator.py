"""Seeded randomized fault-schedule generation.

The generator is a pure function of ``(seed, profile, names)``: it draws
from its own ``random.Random`` (never the simulator's), so the schedule
for a seed can be regenerated, serialized, shrunk and replayed without
running a simulation. This mirrors how randomized intrusion-recovery
evaluations (Hammar & Stadler, DSN 2024) sample failure schedules, but
with the fault taxonomy Spire's threat model cares about: crash/restart
storms, rolling partitions, leader-chasing DoS, message-level faults and
gray failures.

Availability discipline: the generator never schedules more than
``max_concurrent_crashes`` overlapping crash windows (budgeted by ``f``)
and never partitions more than a minority group away, so a correct system
must keep its safety invariants throughout and recover liveness in the
calm after each window. Everything beyond that — loss, duplication,
reordering, corruption, slow nodes — is fair game at any intensity.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from .schedule import FaultAction, FaultSchedule

__all__ = ["ChaosProfile", "generate_schedule"]


@dataclass(frozen=True)
class ChaosProfile:
    """Shape of the fault space one generator draw samples from."""

    #: scheduling window (virtual ms) faults may start in
    window_start_ms: float = 1000.0
    window_end_ms: float = 7000.0
    min_actions: int = 3
    max_actions: int = 8
    #: bound on overlapping crash windows (set to the deployment's f)
    max_concurrent_crashes: int = 1
    #: bound on partition minority size (set to f)
    max_partition_minority: int = 1
    min_fault_ms: float = 300.0
    max_fault_ms: float = 2500.0
    #: kinds to draw from; weights skew toward the message-level faults
    #: that exercise the widest protocol surface
    kinds: Tuple[str, ...] = (
        "crash", "crash",
        "partition",
        "dos", "leader_dos",
        "drop", "drop",
        "duplicate",
        "reorder",
        "delay_spike",
        "corrupt",
        "slow_node",
        "asym_link",
        "jitter_storm",
    )


def _window(rng: random.Random, profile: ChaosProfile) -> Tuple[float, float]:
    start = rng.uniform(profile.window_start_ms, profile.window_end_ms)
    duration = rng.uniform(profile.min_fault_ms, profile.max_fault_ms)
    return round(start, 3), round(duration, 3)


def _crash_fits(
    start: float, duration: float,
    existing: List[Tuple[float, float]], limit: int,
) -> bool:
    overlapping = sum(
        1 for s, d in existing if start < s + d and s < start + duration
    )
    return overlapping < limit


def generate_schedule(
    seed: int,
    replicas: Sequence[str],
    endpoints: Sequence[str] = (),
    profile: Optional[ChaosProfile] = None,
    overlay_links: Sequence[Tuple[str, str]] = (),
    overlay_sites: Sequence[str] = (),
) -> FaultSchedule:
    """Draw one randomized fault schedule for the given topology.

    ``replicas`` are crashable consensus participants; ``endpoints``
    (proxies, HMIs) additionally scope message-level faults. To draw the
    overlay fault kinds (``link_kill``/``link_degrade``/``daemon_kill``),
    include them in ``profile.kinds`` and pass the overlay's link pairs
    and interior site names — both expressed as *site* names, which the
    engine maps to daemon processes. The result is a deterministic
    function of the arguments.
    """
    profile = profile or ChaosProfile()
    rng = random.Random(f"{seed}/chaos-schedule")
    replicas = list(replicas)
    message_scopes = replicas + list(endpoints)
    count = rng.randint(profile.min_actions, profile.max_actions)
    crash_windows: List[Tuple[float, float]] = []
    actions: List[FaultAction] = []

    for _ in range(count):
        kind = rng.choice(profile.kinds)
        start, duration = _window(rng, profile)
        if kind == "crash":
            if not _crash_fits(start, duration, crash_windows,
                               profile.max_concurrent_crashes):
                continue  # keep the crash budget; draw fewer actions instead
            crash_windows.append((start, duration))
            actions.append(FaultAction(
                "crash", start, duration, targets=(rng.choice(replicas),),
            ))
        elif kind == "partition":
            minority_size = rng.randint(1, max(1, profile.max_partition_minority))
            minority = tuple(sorted(rng.sample(replicas, minority_size)))
            actions.append(FaultAction("partition", start, duration,
                                       targets=minority))
        elif kind == "dos":
            actions.append(FaultAction(
                "dos", start, duration, targets=(rng.choice(replicas),),
                params=(
                    ("extra_delay_ms", round(rng.uniform(100.0, 400.0), 1)),
                    ("extra_loss", round(rng.uniform(0.1, 0.4), 3)),
                ),
            ))
        elif kind == "leader_dos":
            actions.append(FaultAction(
                "leader_dos", start, duration,
                params=(
                    ("extra_delay_ms", round(rng.uniform(150.0, 400.0), 1)),
                    ("extra_loss", round(rng.uniform(0.1, 0.3), 3)),
                    ("retarget_interval_ms", round(rng.uniform(500.0, 2000.0), 1)),
                ),
            ))
        elif kind in ("drop", "duplicate", "corrupt"):
            scope = tuple(sorted(rng.sample(
                message_scopes, rng.randint(1, min(3, len(message_scopes)))
            )))
            probability = {
                "drop": rng.uniform(0.05, 0.4),
                "duplicate": rng.uniform(0.1, 0.5),
                "corrupt": rng.uniform(0.05, 0.3),
            }[kind]
            actions.append(FaultAction(
                kind, start, duration, targets=scope,
                params=(("probability", round(probability, 3)),),
            ))
        elif kind == "reorder":
            scope = tuple(sorted(rng.sample(
                message_scopes, rng.randint(1, min(3, len(message_scopes)))
            )))
            actions.append(FaultAction(
                "reorder", start, duration, targets=scope,
                params=(
                    ("window_ms", round(rng.uniform(5.0, 40.0), 1)),
                    ("probability", round(rng.uniform(0.3, 1.0), 3)),
                ),
            ))
        elif kind == "delay_spike":
            scope = tuple(sorted(rng.sample(
                message_scopes, rng.randint(1, min(3, len(message_scopes)))
            )))
            actions.append(FaultAction(
                "delay_spike", start, duration, targets=scope,
                params=(
                    ("extra_ms", round(rng.uniform(20.0, 200.0), 1)),
                    ("jitter_ms", round(rng.uniform(0.0, 50.0), 1)),
                    ("probability", round(rng.uniform(0.2, 1.0), 3)),
                ),
            ))
        elif kind == "slow_node":
            actions.append(FaultAction(
                "slow_node", start, duration, targets=(rng.choice(replicas),),
                params=(("extra_delay_ms", round(rng.uniform(20.0, 120.0), 1)),),
            ))
        elif kind == "asym_link":
            src, dst = rng.sample(replicas, 2)
            actions.append(FaultAction(
                "asym_link", start, duration, targets=(src, dst),
                params=(
                    ("extra_delay_ms", round(rng.uniform(50.0, 250.0), 1)),
                    ("extra_loss", round(rng.uniform(0.0, 0.2), 3)),
                ),
            ))
        elif kind == "link_kill":
            if not overlay_links:
                continue
            a, b = rng.choice(list(overlay_links))
            actions.append(FaultAction("link_kill", start, duration,
                                       targets=(a, b)))
        elif kind == "link_degrade":
            if not overlay_links:
                continue
            a, b = rng.choice(list(overlay_links))
            actions.append(FaultAction(
                "link_degrade", start, duration, targets=(a, b),
                params=(
                    ("extra_delay_ms", round(rng.uniform(50.0, 300.0), 1)),
                    ("extra_loss", round(rng.uniform(0.0, 0.3), 3)),
                ),
            ))
        elif kind == "daemon_kill":
            if not overlay_sites:
                continue
            actions.append(FaultAction(
                "daemon_kill", start, duration,
                targets=(rng.choice(list(overlay_sites)),),
            ))
        elif kind in ("leader_kill", "leader_partition"):
            # Targets stay empty: the engine resolves the current leader
            # when the fault fires. Windows are stretched past the TAT
            # suspicion + view-change horizon so every draw actually
            # forces a view change rather than a blip the old leader
            # survives. Kills count against the crash budget — a leader
            # kill is a crash, whoever it lands on.
            duration = round(rng.uniform(1200.0, profile.max_fault_ms + 1200.0), 3)
            if kind == "leader_kill":
                if not _crash_fits(start, duration, crash_windows,
                                   profile.max_concurrent_crashes):
                    continue
                crash_windows.append((start, duration))
            actions.append(FaultAction(kind, start, duration))
        elif kind == "jitter_storm":
            scope = tuple(sorted(rng.sample(
                message_scopes, rng.randint(1, min(4, len(message_scopes)))
            )))
            actions.append(FaultAction(
                "jitter_storm", start, duration, targets=scope,
                params=(
                    ("max_extra_ms", round(rng.uniform(10.0, 60.0), 1)),
                    ("probability", round(rng.uniform(0.2, 0.8), 3)),
                ),
            ))

    return FaultSchedule(tuple(actions))
