"""PBFT-baseline chaos harness: leader faults against a flat cluster.

The Spire chaos engine exercises Prime inside the full deployment; this
harness points the same fault vocabulary (``leader_kill`` /
``leader_partition`` with fire-time leader resolution) and the same
invariant monitors (:class:`~repro.chaos.monitors.SafetyMonitor`,
:class:`~repro.chaos.monitors.ViewRecoveryMonitor`) at the PBFT baseline,
so leader-failure recovery is pinned in *both* protocols. The cluster is
flat — ``n`` replicas on one switched network with a periodic traffic
source submitting through whichever replica is up — matching the topology
the baseline's benchmarks use.

A run is a pure function of ``(options, schedule)``: the schedule is
drawn by the shared seeded generator restricted to leader-fault kinds,
and every fault resolves its target (the *current* leader) only at fire
time, so cascades land on whoever actually leads by then.
"""

from __future__ import annotations

import dataclasses
import json
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..crypto import FastCrypto
from ..crypto.encoding import digest
from ..obs import EV_PBFT_NEW_VIEW, EventLog, Observability
from ..pbft import PbftConfig, PbftNode
from ..prime import LoggingApp, sign_client_update
from ..simnet import FailureInjector, LinkSpec, Network, Simulator
from .engine import HOST_STAT_KEYS
from .generator import ChaosProfile, generate_schedule
from .monitors import SafetyMonitor, ViewRecoveryMonitor, Violation
from .schedule import FaultSchedule

__all__ = ["PbftChaosOptions", "PbftChaosResult", "run_pbft_chaos"]

#: the fault kinds this harness draws (and knows how to apply)
PBFT_LEADER_KINDS = ("leader_kill", "leader_kill", "leader_partition")


@dataclass(frozen=True)
class PbftChaosOptions:
    """One PBFT leader-fault chaos run."""

    seed: int = 1
    n: int = 6
    f: int = 1
    warmup_ms: float = 1000.0
    chaos_ms: float = 5000.0
    settle_ms: float = 4000.0
    #: traffic source period; every request arms the request timeout on
    #: every replica, which is what drives the baseline's view changes
    request_interval_ms: float = 150.0
    request_timeout_ms: float = 800.0
    #: per leader fault: quorum must adopt a higher view and an update
    #: must execute within this budget (timeout detection + one VC round)
    view_recovery_bound_ms: float = 3000.0
    checkpoint_interval: int = 16
    min_actions: int = 1
    max_actions: int = 3

    @property
    def total_ms(self) -> float:
        return self.warmup_ms + self.chaos_ms + self.settle_ms

    def to_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)

    @staticmethod
    def from_dict(data: Dict[str, Any]) -> "PbftChaosOptions":
        known = {f.name for f in dataclasses.fields(PbftChaosOptions)}
        return PbftChaosOptions(
            **{k: v for k, v in data.items() if k in known}
        )


@dataclass
class PbftChaosResult:
    """Outcome of one PBFT chaos run."""

    options: PbftChaosOptions
    schedule: FaultSchedule
    violations: List[Violation]
    stats: Dict[str, Any]
    injector_log: List[str] = field(default_factory=list)
    fingerprint: str = ""
    obs_snapshot: Optional[Dict[str, Any]] = None

    @property
    def ok(self) -> bool:
        return not self.violations

    @property
    def deterministic_stats(self) -> Dict[str, Any]:
        """Stats with host-dependent wall-clock values stripped."""
        return {
            key: value
            for key, value in self.stats.items()
            if key not in HOST_STAT_KEYS
        }


def _majority_view(nodes: List[PbftNode]) -> int:
    views = [node.view for node in nodes if node.is_up]
    return max(set(views), key=views.count) if views else 0


def run_pbft_chaos(
    options: Optional[PbftChaosOptions] = None,
    schedule: Optional[FaultSchedule] = None,
) -> PbftChaosResult:
    opts = options or PbftChaosOptions()
    wall_start = time.perf_counter()
    simulator = Simulator(seed=opts.seed)
    network = Network(simulator, LinkSpec(latency_ms=0.3, jitter_ms=0.1))
    crypto = FastCrypto(seed=f"pbft-chaos/{opts.seed}")
    trace = EventLog(now_fn=lambda: simulator.now)
    names = tuple(f"replica:{i}" for i in range(opts.n))
    config = PbftConfig(
        names,
        num_faults=opts.f,
        request_timeout_ms=opts.request_timeout_ms,
        checkpoint_interval=opts.checkpoint_interval,
    )
    nodes = [
        PbftNode(name, simulator, network, config, crypto, LoggingApp(),
                 trace=trace)
        for name in names
    ]

    # --- monitors ----------------------------------------------------
    safety = SafetyMonitor(simulator)
    safety.attach(nodes)
    view_recovery = ViewRecoveryMonitor(
        simulator, bound_ms=opts.view_recovery_bound_ms, quorum=config.quorum,
    )

    # Exactly-once bookkeeping: per replica, no update may execute twice;
    # globally, record each update's first execution for the resume check.
    exec_counts: Dict[str, Dict[Tuple[str, int], int]] = {
        name: {} for name in names
    }
    first_executed: Dict[Tuple[str, int], float] = {}

    def listener_for(replica: str):
        def on_execute(update, order_index, result):
            key = (update.client, update.client_seq)
            exec_counts[replica][key] = exec_counts[replica].get(key, 0) + 1
            first_executed.setdefault(key, simulator.now)
        return on_execute

    for node in nodes:
        node.execution_listeners.append(listener_for(node.name))

    # --- fault schedule ----------------------------------------------
    if schedule is None:
        profile = ChaosProfile(
            window_start_ms=opts.warmup_ms,
            window_end_ms=opts.warmup_ms + opts.chaos_ms,
            min_actions=opts.min_actions,
            max_actions=opts.max_actions,
            max_concurrent_crashes=max(1, opts.f),
            kinds=PBFT_LEADER_KINDS,
        )
        schedule = generate_schedule(opts.seed, names, profile=profile)

    injector = FailureInjector(simulator, network)
    for action in schedule:
        if action.kind == "leader_kill":
            def resolve_leader() -> str:
                target = config.leader_of_view(_majority_view(nodes))
                view_recovery.note_fault(target, _majority_view(nodes))
                return target

            injector.crash_resolved_window(
                resolve_leader, action.start_ms, action.duration_ms,
                label="LEADER-KILL",
            )
        elif action.kind == "leader_partition":
            def resolve_groups() -> Tuple[List[str], List[str]]:
                target = config.leader_of_view(_majority_view(nodes))
                view_recovery.note_fault(target, _majority_view(nodes))
                return [target], [name for name in names if name != target]

            injector.partition_resolved_window(
                resolve_groups, action.start_ms, action.duration_ms,
                label="LEADER-PARTITION",
            )
        else:  # pragma: no cover - the harness only draws leader kinds
            raise ValueError(f"unsupported fault kind {action.kind!r}")

    # --- traffic source ----------------------------------------------
    state = {"seq": 0, "submitted": 0}

    def submit_tick() -> None:
        state["seq"] += 1
        update = sign_client_update(
            crypto, "client:chaos", state["seq"], ("op", state["seq"]),
        )
        # Rotate the ingress replica; skip ahead past crashed ones.
        for offset in range(opts.n):
            node = nodes[(state["seq"] + offset) % opts.n]
            if node.is_up:
                if node.submit(update):
                    state["submitted"] += 1
                return

    simulator.call_every(
        opts.request_interval_ms, submit_tick,
        jitter=5.0, rng_name="pbft-chaos/client",
    )

    # --- run ----------------------------------------------------------
    for node in nodes:
        node.start()
    simulator.run_for(opts.total_ms)

    # --- post-run checks ----------------------------------------------
    adoptions = [
        (event.time, event.component, int(event.details.get("view", -1)))
        for event in trace.events(None, EV_PBFT_NEW_VIEW)
    ]
    view_recovery.evaluate(
        adoptions, sorted(first_executed.values()), opts.total_ms,
    )

    violations: List[Violation] = []
    violations.extend(safety.violations())
    violations.extend(view_recovery.violations())
    for replica, counts in exec_counts.items():
        for key, count in counts.items():
            if count > 1:
                violations.append(Violation(
                    "exactly-once", "double-execution", opts.total_ms,
                    (("client", key[0]), ("client_seq", key[1]),
                     ("count", count), ("replica", replica)),
                ))
    violations.sort(key=lambda v: (v.time_ms, v.monitor, v.kind))

    stats = {
        "submitted": state["submitted"],
        "executed": {node.name: node.executed_counter for node in nodes},
        "views": [node.view for node in nodes],
        "stable_seqs": [node.stable_seq for node in nodes],
        "view_faults_checked": view_recovery.faults_checked,
        "view_recovery_latencies_ms": [
            round(latency, 3)
            for latency in view_recovery.recovery_latencies_ms
        ],
        "executions_checked": safety.checked,
        "new_view_adoptions": len(adoptions),
        "fault_kinds": sorted({action.kind for action in schedule}),
    }
    stats["wall_runtime_s"] = round(time.perf_counter() - wall_start, 4)
    deterministic = {
        key: value for key, value in stats.items() if key not in HOST_STAT_KEYS
    }
    fingerprint = digest(
        "pbft-chaos:"
        + json.dumps(
            {
                "options": opts.to_dict(),
                "schedule": schedule.to_list(),
                "violations": [v.to_dict() for v in violations],
                "stats": deterministic,
            },
            sort_keys=True,
        ),
    )
    return PbftChaosResult(
        options=opts,
        schedule=schedule,
        violations=violations,
        stats=stats,
        injector_log=injector.log,
        fingerprint=fingerprint,
        obs_snapshot=Observability.for_trace(trace).snapshot(
            deterministic_only=True
        ),
    )
