"""``repro.chaos`` — seeded chaos testing with runtime invariant monitors.

The chaos subsystem composes randomized-but-replayable fault schedules on
top of ``repro.simnet`` and runs them against full Spire deployments while
invariant monitors watch for safety, gating, quorum and bounded-delay
violations. Every run is a pure function of ``(seed, schedule)``; failing
runs dump JSON scenario files that replay byte-for-byte and shrink to
minimal reproducers.

Quickstart::

    from repro.chaos import ChaosEngine, ChaosOptions

    result = ChaosEngine(ChaosOptions(seed=42)).run()
    assert result.ok, result.violations
"""

from .engine import (
    HOST_STAT_KEYS,
    LEADER_FAULT_KINDS,
    OVERLAY_FAULT_KINDS,
    ChaosEngine,
    ChaosOptions,
    ChaosResult,
)
from .generator import ChaosProfile, generate_schedule
from .monitors import (
    BoundedDelayMonitor,
    ProxyGateMonitor,
    QuorumAvailabilityMonitor,
    QuorumFloorMonitor,
    RerouteBoundMonitor,
    SafetyMonitor,
    ViewRecoveryMonitor,
    Violation,
)
from .pbft import PbftChaosOptions, PbftChaosResult, run_pbft_chaos
from .scenario import (
    SCENARIO_FORMAT,
    ReplayMismatch,
    dump_scenario,
    load_scenario,
    replay_scenario,
    scenario_dict,
)
from .schedule import FAULT_KINDS, FaultAction, FaultSchedule
from .shrink import ShrinkResult, shrink_schedule

__all__ = [
    "ChaosEngine",
    "ChaosOptions",
    "ChaosResult",
    "HOST_STAT_KEYS",
    "ChaosProfile",
    "generate_schedule",
    "SafetyMonitor",
    "ProxyGateMonitor",
    "QuorumAvailabilityMonitor",
    "QuorumFloorMonitor",
    "BoundedDelayMonitor",
    "RerouteBoundMonitor",
    "ViewRecoveryMonitor",
    "Violation",
    "FaultAction",
    "FaultSchedule",
    "FAULT_KINDS",
    "OVERLAY_FAULT_KINDS",
    "LEADER_FAULT_KINDS",
    "PbftChaosOptions",
    "PbftChaosResult",
    "run_pbft_chaos",
    "SCENARIO_FORMAT",
    "scenario_dict",
    "dump_scenario",
    "load_scenario",
    "replay_scenario",
    "ReplayMismatch",
    "ShrinkResult",
    "shrink_schedule",
]
