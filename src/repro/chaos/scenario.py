"""Scenario files: dump, load and replay chaos runs.

When a chaos run flags an invariant violation, the engine's result is
dumped to a JSON *scenario file* capturing everything needed to reproduce
it: the deployment options, the exact fault schedule, the violations seen
and the run fingerprint. ``replay_scenario`` rebuilds the run from that
file; because the whole system is deterministic in ``(seed, schedule)``,
the replay produces the identical fingerprint — byte-for-byte the same
trace — which is asserted so a stale or hand-edited scenario fails loudly
instead of silently diverging.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Optional, Union

from .engine import ChaosEngine, ChaosOptions, ChaosResult, Mutator
from .schedule import FaultSchedule

__all__ = [
    "SCENARIO_FORMAT",
    "scenario_dict",
    "dump_scenario",
    "load_scenario",
    "replay_scenario",
    "ReplayMismatch",
]

SCENARIO_FORMAT = "repro.chaos.scenario/1"


class ReplayMismatch(AssertionError):
    """A replayed scenario did not reproduce the recorded fingerprint."""


def scenario_dict(result: ChaosResult) -> Dict[str, Any]:
    """The serializable scenario image of one chaos result."""
    data = result.to_dict()
    data["format"] = SCENARIO_FORMAT
    return data


def dump_scenario(result: ChaosResult, path: Union[str, Path]) -> Path:
    """Write a replayable scenario file for ``result``; returns the path."""
    path = Path(path)
    path.write_text(json.dumps(scenario_dict(result), indent=2, sort_keys=True))
    return path


def load_scenario(source: Union[str, Path, Dict[str, Any]]) -> Dict[str, Any]:
    """Load and validate a scenario image from a file path or dict."""
    if isinstance(source, dict):
        data = source
    else:
        data = json.loads(Path(source).read_text())
    fmt = data.get("format")
    if fmt != SCENARIO_FORMAT:
        raise ValueError(f"unsupported scenario format: {fmt!r}")
    return data


def replay_scenario(
    source: Union[str, Path, Dict[str, Any]],
    mutator: Optional[Mutator] = None,
    check_fingerprint: bool = True,
) -> ChaosResult:
    """Re-run a dumped scenario and verify it reproduces.

    ``mutator`` must match the one active when the scenario was recorded
    (scenario files capture faults and options, not code mutations).
    Raises :class:`ReplayMismatch` if the replayed fingerprint differs from
    the recorded one.
    """
    data = load_scenario(source)
    engine = ChaosEngine(
        options=ChaosOptions.from_dict(data["options"]),
        schedule=FaultSchedule.from_list(data["schedule"]),
        mutator=mutator,
    )
    result = engine.run()
    recorded = data.get("fingerprint")
    if check_fingerprint and recorded and result.fingerprint != recorded:
        raise ReplayMismatch(
            f"replay fingerprint {result.fingerprint} != recorded {recorded}"
        )
    return result
