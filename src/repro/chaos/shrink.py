"""Delta-debugging shrinker for failing chaos scenarios.

A generated schedule that triggers an invariant violation usually contains
mostly-irrelevant faults. The shrinker runs ddmin (Zeller's delta
debugging) over the schedule's actions: repeatedly re-run the scenario
with subsets of the actions removed, keep any subset that still violates,
and stop at a 1-minimal schedule — removing any single remaining action
makes the violation disappear. Because every fault action draws from its
own named RNG stream, removing one action does not perturb the others'
randomness, which is what makes the reduction monotone enough for ddmin
to work well in practice.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional

from .engine import ChaosEngine, ChaosOptions, Mutator
from .schedule import FaultSchedule

__all__ = ["ShrinkResult", "shrink_schedule"]


@dataclass
class ShrinkResult:
    """Outcome of one shrinking session."""

    schedule: FaultSchedule
    runs: int
    reproduced: bool
    #: progress log: (actions remaining after each successful reduction)
    history: List[int] = field(default_factory=list)


def shrink_schedule(
    options: ChaosOptions,
    schedule: FaultSchedule,
    mutator: Optional[Mutator] = None,
    max_runs: int = 64,
) -> ShrinkResult:
    """Reduce ``schedule`` to a smaller one still violating an invariant.

    Returns the smallest reproducing schedule found within ``max_runs``
    engine re-runs. ``reproduced`` is False when even the full schedule no
    longer violates (stale scenario or wrong mutator) — in that case the
    input schedule is returned unchanged.
    """
    state = {"runs": 0}

    def violates(candidate: FaultSchedule) -> bool:
        state["runs"] += 1
        return bool(ChaosEngine(options, candidate, mutator).run().violations)

    if not violates(schedule):
        return ShrinkResult(schedule, state["runs"], reproduced=False)

    history: List[int] = [len(schedule)]

    # A violation independent of every fault (e.g. a code mutant caught in
    # a calm run) shrinks straight to the empty schedule.
    if len(schedule) and violates(schedule.subset(())):
        return ShrinkResult(
            schedule.subset(()), state["runs"], reproduced=True, history=[0],
        )

    current = list(range(len(schedule)))
    granularity = 2
    while len(current) > 1 and state["runs"] < max_runs:
        chunk = max(1, math.ceil(len(current) / granularity))
        reduced = False
        for offset in range(0, len(current), chunk):
            candidate = current[:offset] + current[offset + chunk:]
            if not candidate or state["runs"] >= max_runs:
                continue
            if violates(schedule.subset(candidate)):
                current = candidate
                granularity = max(2, granularity - 1)
                history.append(len(current))
                reduced = True
                break
        if not reduced:
            if granularity >= len(current):
                break  # 1-minimal: no single action can be removed
            granularity = min(len(current), granularity * 2)

    return ShrinkResult(
        schedule.subset(current), state["runs"], reproduced=True, history=history,
    )
