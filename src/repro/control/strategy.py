"""The feedback recovery strategy: the control loop, assembled.

Dataflow per sense tick (every ``sense_interval_ms``)::

    SignalHub.poll()  ──batch──▶  HealthEstimator.observe()
                                        │ scores
                                        ▼
                              ControlPolicy.decide()
                                        │ pick / None
                                        ▼
                      RecoveryStrategy._try_rejuvenate()
                      (hard 2f+k+1 floor: defer, never break quorum)

Decisions are emitted as ``control-decision`` obs events and per-replica
suspicion lands in ``control.suspicion.<replica>`` gauges, so scenario
reports show *why* the controller acted. When every score sits at
baseline for ``fallback_after_ms`` — or when the deployment runs with
observability disabled and there are no signals at all — the strategy
degrades to the fixed periodic rotation (``control-fallback`` events),
so rejuvenation coverage never lapses.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from ..core.recovery import RecoveryStrategy
from ..obs import (
    COMP_RECOVERY_CONTROLLER,
    EV_CONTROL_DECISION,
    EV_CONTROL_FALLBACK,
    EventLog,
    Observability,
)
from ..simnet import Process, Simulator
from .estimator import HealthEstimator
from .options import ControlOptions
from .policy import ControlPolicy
from .signals import SignalHub

__all__ = ["FeedbackStrategy"]


class FeedbackStrategy(RecoveryStrategy):
    """Adaptive proactive recovery driven by observed health signals."""

    def __init__(
        self,
        simulator: Simulator,
        replicas: List[Process],
        period_ms: float,
        recovery_duration_ms: float,
        control: Optional[ControlOptions] = None,
        hub: Optional[SignalHub] = None,
        max_concurrent: int = 1,
        trace: Optional[EventLog] = None,
        on_rejuvenate: Optional[Callable[[Process], None]] = None,
        min_live: Optional[int] = None,
        obs: Optional[Observability] = None,
    ) -> None:
        super().__init__(
            simulator, replicas, recovery_duration_ms,
            max_concurrent=max_concurrent, trace=trace,
            on_rejuvenate=on_rejuvenate, min_live=min_live, obs=obs,
        )
        self.control = (control or ControlOptions()).validate()
        #: fallback rotation period (the schedule the controller degrades
        #: to when signals are quiet or unavailable)
        self.period_ms = (
            self.control.fallback_period_ms
            if self.control.fallback_period_ms is not None else period_ms
        )
        #: ``None`` when observability is disabled: the loop then runs as
        #: a pure periodic rotation on the sense timer
        self.hub = hub
        names = [replica.name for replica in self.replicas]
        self.estimator = HealthEstimator(names, self.control)
        self.policy = ControlPolicy(names, self.control)
        self._by_name = {replica.name: replica for replica in self.replicas}
        self._next_index = 0
        self._last_rotation_at = 0.0
        #: replica -> time its last rejuvenation finished (grace window)
        self._finished_at: dict = {}
        #: controller-initiated (targeted) recoveries actually started
        self.decisions = 0
        #: quiet-fallback rotations performed
        self.fallback_rotations = 0

    # ------------------------------------------------------------------
    def start(self, first_delay_ms: Optional[float] = None) -> None:
        """Arm the sense timer (stopping any previous one first)."""
        self.stop()
        self._stop = self.simulator.call_every(
            self.control.sense_interval_ms,
            self._tick,
            first_delay=first_delay_ms,
            rng_name="recovery-controller",
        )

    # ------------------------------------------------------------------
    # The control loop
    # ------------------------------------------------------------------
    def _tick(self) -> None:
        now = self.simulator.now
        if self.hub is not None:
            batch = self.hub.poll(self._shielded(now))
            self.estimator.observe(batch, self.control.sense_interval_ms)
            self._publish_scores()
            pick = self.policy.decide(now, self.estimator.scores, self._eligible)
            if pick is not None:
                started = self._try_rejuvenate(self._by_name[pick])
                self.obs.event(
                    COMP_RECOVERY_CONTROLLER, EV_CONTROL_DECISION,
                    replica=pick,
                    score=round(self.estimator.suspicion(pick), 4),
                    started=started,
                )
                if started:
                    self.policy.note_fired(pick, now)
                    self.decisions += 1
                    self._last_rotation_at = now
                    if self.obs.enabled:
                        self.obs.counter("control.decisions").inc()
                # a floor-deferred pick stays armed: retried next tick
                return
        if self.hub is None or self.policy.in_fallback(now):
            self._fallback_rotation(now)

    def _shielded(self, now: float) -> set:
        """Replicas whose evidence is discounted right now: mid-recovery,
        plus those inside the post-recovery grace window."""
        grace = self.control.post_recovery_grace_ms
        return self._recovering | {
            name for name, at in self._finished_at.items()
            if now - at <= grace
        }

    def _eligible(self, name: str) -> bool:
        if self._in_recovery >= self.max_concurrent:
            return False
        replica = self._by_name.get(name)
        return (
            replica is not None
            and replica.is_up
            and name not in self._recovering
        )

    def _fallback_rotation(self, now: float) -> None:
        """The quiet-path periodic rotation (same shape as
        :class:`~repro.core.recovery.PeriodicStrategy`)."""
        if now - self._last_rotation_at < self.period_ms:
            return
        self._last_rotation_at = now
        if self._in_recovery >= self.max_concurrent:
            self.skipped += 1
            return
        if self._defer_if_below_floor():
            return
        candidates = len(self.replicas)
        for _ in range(candidates):
            replica = self.replicas[self._next_index % candidates]
            self._next_index += 1
            if replica.is_up and replica.name not in self._recovering:
                self._begin(replica)
                self.policy.note_fired(replica.name, now)
                self.fallback_rotations += 1
                self.obs.event(
                    COMP_RECOVERY_CONTROLLER, EV_CONTROL_FALLBACK,
                    replica=replica.name,
                )
                if self.obs.enabled:
                    self.obs.counter("control.fallback_rotations").inc()
                return
        self.skipped += 1

    # ------------------------------------------------------------------
    def _finish(self, replica: Process) -> None:
        super()._finish(replica)
        # the replica restarted from a clean, re-diversified image: every
        # piece of prior evidence about it is stale by construction
        self.estimator.reset(replica.name)
        self._finished_at[replica.name] = self.simulator.now

    def _publish_scores(self) -> None:
        if not self.obs.enabled:
            return
        for name, score in self.estimator.scores.items():
            self.obs.gauge(f"control.suspicion.{name}").set(round(score, 4))
