"""Health-signal collection for the feedback recovery controller.

The :class:`SignalHub` is the controller's only window onto the system.
Each sense tick it produces one :class:`SignalBatch` from two sources:

* **the structured event log** (``repro.obs``), read *incrementally* —
  Prime ``Suspect`` votes (a vote against view ``v`` names
  ``leader_of_view(v)``), and self-healing overlay link trouble
  (down/degraded/partition events name sites; the hub maps sites to the
  replicas placed there);
* **direct state probes** — replicas observed down outside a
  rejuvenation window (missed-heartbeat analog), execution-sequence lag
  behind the fleet maximum, and the chaos invariant monitors' violation
  counters mirrored into the metric registry.

Everything read is a deterministic function of the simulation, so the
controller's input stream — and therefore every decision — replays
exactly at a fixed seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Sequence, Set, Tuple

from ..obs import (
    EV_OVERLAY_LINK_DEGRADED,
    EV_OVERLAY_LINK_DOWN,
    EV_OVERLAY_PARTITION,
    EV_SUSPECT,
    EventLog,
)

__all__ = ["SignalBatch", "SignalHub"]

#: overlay event kinds that indicate trouble on a link/site
_OVERLAY_TROUBLE = frozenset({
    EV_OVERLAY_LINK_DOWN, EV_OVERLAY_LINK_DEGRADED, EV_OVERLAY_PARTITION,
})


@dataclass
class SignalBatch:
    """One sense interval's worth of evidence, keyed by replica name."""

    #: replica -> number of fresh Suspect votes naming it as the leader
    suspect_votes: Dict[str, int] = field(default_factory=dict)
    #: replicas observed down outside a rejuvenation window
    crashed: Tuple[str, ...] = ()
    #: replica -> execution-sequence lag behind the fleet maximum
    #: (only entries at or beyond the configured threshold)
    lagging: Dict[str, int] = field(default_factory=dict)
    #: replica -> fresh overlay trouble events touching its site
    overlay: Dict[str, int] = field(default_factory=dict)
    #: fresh chaos-monitor invariant violations (system-wide)
    violations: int = 0

    @property
    def quiet(self) -> bool:
        """True when the batch carries no evidence at all."""
        return not (self.suspect_votes or self.crashed or self.lagging
                    or self.overlay or self.violations)


class SignalHub:
    """Incremental reader turning raw observability into per-replica signals."""

    def __init__(
        self,
        log: EventLog,
        replicas: Sequence[Any],
        replica_sites: Dict[str, str],
        leader_of_view: Callable[[int], str],
        registry: Any = None,
        lag_threshold_seqs: int = 25,
    ) -> None:
        self.log = log
        self.replicas = list(replicas)
        self.replica_sites = dict(replica_sites)
        self.leader_of_view = leader_of_view
        self.registry = registry
        self.lag_threshold_seqs = lag_threshold_seqs
        #: replicas placed at each overlay site (for link-event mapping)
        self._site_replicas: Dict[str, List[str]] = {}
        for name, site in self.replica_sites.items():
            self._site_replicas.setdefault(site, []).append(name)
        self._cursor = 0
        self._violations_seen = 0

    # ------------------------------------------------------------------
    def poll(self, recovering: Set[str]) -> SignalBatch:
        """Collect everything new since the previous poll.

        ``recovering`` names replicas currently inside a strategy-initiated
        rejuvenation window: their downtime is expected and must not feed
        back into suspicion (the controller would otherwise re-suspect
        every replica it heals).
        """
        batch = SignalBatch()
        self._drain_events(batch, recovering)
        self._probe_state(batch, recovering)
        self._probe_violations(batch)
        return batch

    # ------------------------------------------------------------------
    def _drain_events(self, batch: SignalBatch, recovering: Set[str]) -> None:
        # Incremental read: the event log only ever appends (clear() is
        # never called mid-run), so a plain index cursor sees each event
        # exactly once without copying the log.
        events = self.log._events
        for event in events[self._cursor:]:
            kind = event.kind
            if kind == EV_SUSPECT:
                view = event.details.get("view")
                if view is None:
                    continue
                target = self.leader_of_view(view)
                if target in recovering:
                    # votes provoked by our own rejuvenation of the
                    # leader — expected, not evidence of compromise
                    continue
                batch.suspect_votes[target] = (
                    batch.suspect_votes.get(target, 0) + 1
                )
            elif kind in _OVERLAY_TROUBLE:
                for name in self._overlay_targets(event.details):
                    batch.overlay[name] = batch.overlay.get(name, 0) + 1
        self._cursor = len(events)

    def _overlay_targets(self, details: Dict[str, Any]) -> List[str]:
        link = details.get("link")
        if not link:
            # partition event: site-less, system-wide — touches everyone
            return [r.name for r in self.replicas]
        targets: List[str] = []
        for site in str(link).split("<->"):
            targets.extend(self._site_replicas.get(site, ()))
        return targets

    def _probe_state(self, batch: SignalBatch, recovering: Set[str]) -> None:
        crashed: List[str] = []
        max_seq = 0
        for replica in self.replicas:
            max_seq = max(max_seq, getattr(replica, "last_executed_seq", 0))
        for replica in self.replicas:
            name = replica.name
            if name in recovering:
                continue  # expected downtime: the strategy put it there
            if not replica.is_up:
                crashed.append(name)
                continue
            lag = max_seq - getattr(replica, "last_executed_seq", 0)
            if lag >= self.lag_threshold_seqs:
                batch.lagging[name] = lag
        batch.crashed = tuple(crashed)

    def _probe_violations(self, batch: SignalBatch) -> None:
        if self.registry is None:
            return
        total = 0
        for name in self.registry.names():
            if name.startswith("chaos.violations."):
                total += self.registry.get(name).value
        if total > self._violations_seen:
            batch.violations = total - self._violations_seen
            self._violations_seen = total
