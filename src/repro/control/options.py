"""Knobs of the adaptive intrusion-tolerance control loop.

One frozen :class:`ControlOptions` fully parameterizes the feedback
strategy: how often it senses, how evidence moves the per-replica
suspicion score, the hysteresis band that turns scores into decisions,
the cooldowns that stop it thrashing, and the quiet-fallback cadence.
Attach it to a deployment via ``SpireOptions(control=ControlOptions())``.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, Dict, Optional

__all__ = ["ControlOptions"]


@dataclass(frozen=True)
class ControlOptions:
    """Configuration of the feedback recovery controller.

    The defaults are tuned for the repo's WAN chaos scenarios (Prime WAN
    timeouts, 100–500 ms poll/resubmit cadence): suspicion saturates
    within a few sense intervals of sustained evidence and decays to
    baseline within a handful of seconds of quiet.
    """

    #: controller evaluation period (also the signal-polling period)
    sense_interval_ms: float = 250.0
    #: how strongly one unit of fresh evidence moves a score toward 1.0
    ewma_alpha: float = 0.35
    #: suspicion half-life while a replica is quiet (exponential decay)
    decay_half_life_ms: float = 4000.0
    #: score above this ⇒ the replica is a rejuvenation candidate
    trigger_threshold: float = 0.55
    #: hysteresis: after firing, a replica re-arms only once its score
    #: falls back below this (and its cooldown has elapsed)
    clear_threshold: float = 0.25
    #: per-replica minimum spacing between targeted rejuvenations
    cooldown_ms: float = 6000.0
    #: global minimum spacing between controller-initiated recoveries
    #: (keeps a burst of suspicion from serializing the whole fleet
    #: through recovery back to back)
    decision_gap_ms: float = 1500.0
    #: with every score at baseline for this long, the controller falls
    #: back to the periodic rotation (never leaves replicas unrejuvenated
    #: forever just because the system looks healthy)
    fallback_after_ms: float = 10_000.0
    #: rotation period used while in fallback; ``None`` inherits the
    #: deployment's ``proactive_recovery`` period
    fallback_period_ms: Optional[float] = None
    #: scores below this count as baseline for the fallback clock
    baseline_threshold: float = 0.05
    #: after a rejuvenation completes, evidence against that replica is
    #: discounted for this long — Suspect votes from the view change our
    #: own leader-rejuvenation provoked keep arriving after the window
    #: closes, and must not re-suspect the fresh image
    post_recovery_grace_ms: float = 1500.0

    # --- evidence weights (units of evidence per signal occurrence) ----
    #: a peer's Suspect vote naming the replica as a slow/faulty leader
    weight_suspect: float = 0.8
    #: the replica is observed down outside a rejuvenation window
    weight_crash: float = 1.0
    #: execution lag beyond ``lag_threshold_seqs`` behind the fleet max
    weight_lag: float = 0.5
    #: overlay link trouble (down/degraded/partition) at the replica's site
    weight_overlay: float = 0.3
    #: a chaos invariant monitor flagged a violation (system-wide alarm,
    #: spread across all live replicas)
    weight_violation: float = 0.4
    #: sequence-number lag behind the fleet maximum that counts as a
    #: missed-heartbeat signal
    lag_threshold_seqs: int = 25

    def validate(self) -> "ControlOptions":
        """Reject inconsistent knobs with actionable errors; chains."""
        if self.sense_interval_ms <= 0:
            raise ValueError(
                f"sense_interval_ms must be positive (got {self.sense_interval_ms})"
            )
        if not 0.0 < self.ewma_alpha <= 1.0:
            raise ValueError(
                f"ewma_alpha must be in (0, 1] (got {self.ewma_alpha})"
            )
        if self.decay_half_life_ms <= 0:
            raise ValueError(
                f"decay_half_life_ms must be positive (got {self.decay_half_life_ms})"
            )
        if not 0.0 < self.trigger_threshold <= 1.0:
            raise ValueError(
                f"trigger_threshold must be in (0, 1] (got {self.trigger_threshold})"
            )
        if not 0.0 <= self.clear_threshold < self.trigger_threshold:
            raise ValueError(
                f"clear_threshold ({self.clear_threshold}) must be below "
                f"trigger_threshold ({self.trigger_threshold}): the gap is "
                f"the hysteresis band"
            )
        if self.cooldown_ms < 0 or self.decision_gap_ms < 0:
            raise ValueError(
                "cooldown_ms and decision_gap_ms must be >= 0 "
                f"(got {self.cooldown_ms}, {self.decision_gap_ms})"
            )
        if self.post_recovery_grace_ms < 0:
            raise ValueError(
                f"post_recovery_grace_ms must be >= 0 "
                f"(got {self.post_recovery_grace_ms})"
            )
        if self.fallback_after_ms <= 0:
            raise ValueError(
                f"fallback_after_ms must be positive (got {self.fallback_after_ms})"
            )
        if self.fallback_period_ms is not None and self.fallback_period_ms <= 0:
            raise ValueError(
                f"fallback_period_ms must be positive or None "
                f"(got {self.fallback_period_ms})"
            )
        if not 0.0 <= self.baseline_threshold < self.trigger_threshold:
            raise ValueError(
                f"baseline_threshold ({self.baseline_threshold}) must sit "
                f"below trigger_threshold ({self.trigger_threshold})"
            )
        for name in ("weight_suspect", "weight_crash", "weight_lag",
                     "weight_overlay", "weight_violation"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be >= 0")
        if self.lag_threshold_seqs < 1:
            raise ValueError(
                f"lag_threshold_seqs must be >= 1 (got {self.lag_threshold_seqs})"
            )
        return self

    # --- (de)serialization for chaos scenario files -------------------
    def to_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)

    @staticmethod
    def from_dict(data: Dict[str, Any]) -> "ControlOptions":
        names = {f.name for f in dataclasses.fields(ControlOptions)}
        return ControlOptions(
            **{key: value for key, value in data.items() if key in names}
        )
