"""``repro.control`` — the adaptive intrusion-tolerance control loop.

Spire's baseline proactive recovery rejuvenates replicas on a *fixed*
schedule (PAPER.md §V): simple, but it spends rejuvenations on healthy
replicas and reacts to a visibly compromised one only when its rotation
slot comes up. This package replaces the *when/which* decision with a
feedback controller in the spirit of Hammar & Stadler's two-level
feedback control for intrusion tolerance (DSN 2024), built from three
small, separately-testable pieces:

* :class:`SignalHub` — turns ``repro.obs`` events (Prime Suspect votes,
  self-healing overlay link reports) and direct state probes (crashes,
  execution lag, chaos-monitor violation counters) into per-replica
  evidence batches;
* :class:`HealthEstimator` — per-replica EWMA suspicion scores with
  exponential decay;
* :class:`ControlPolicy` — hysteresis + cooldown state machine picking
  the replica to rejuvenate, deterministically.

:class:`FeedbackStrategy` wires them onto the shared
:class:`~repro.core.recovery.RecoveryStrategy` machinery — including the
hard ``2f+k+1`` live-quorum floor — and degrades to the periodic
rotation when signals are quiet or observability is off. Enable it with
``SpireOptions(proactive_recovery=(period, duration),
control=ControlOptions())``; the default remains the bit-identical
periodic schedule.
"""

from .estimator import HealthEstimator
from .options import ControlOptions
from .policy import ControlPolicy
from .signals import SignalBatch, SignalHub
from .strategy import FeedbackStrategy

__all__ = [
    "ControlOptions",
    "ControlPolicy",
    "FeedbackStrategy",
    "HealthEstimator",
    "SignalBatch",
    "SignalHub",
]
