"""The deterministic control policy: suspicion scores → rejuvenation picks.

The policy is a small per-replica state machine with hysteresis:

* **armed** — the replica may be picked once its score crosses
  ``trigger_threshold``;
* **fired** — picked for rejuvenation; it re-arms only after *both* its
  cooldown elapses *and* its score falls back below ``clear_threshold``
  (so a replica whose score hovers at the trigger does not get
  rejuvenated in a tight loop).

A global ``decision_gap_ms`` spaces controller-initiated recoveries so a
burst of fleet-wide suspicion cannot serialize every replica through
recovery back to back. Selection among concurrent candidates is by
highest score with the replica name as the tie-break — fully
deterministic, no randomness anywhere in the loop.

The policy also runs the *fallback clock*: when every score has sat at
baseline for ``fallback_after_ms`` the controller reverts to the fixed
periodic rotation (proactive recovery must never stop entirely just
because the system looks healthy — the whole point of rejuvenation is
bounding *undetected* intrusions).
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Sequence

from .options import ControlOptions

__all__ = ["ControlPolicy"]


class ControlPolicy:
    """Hysteresis + cooldown state machine over suspicion scores."""

    def __init__(
        self, replica_names: Sequence[str], options: ControlOptions
    ) -> None:
        self.options = options
        self._armed: Dict[str, bool] = {name: True for name in replica_names}
        self._fired_at: Dict[str, float] = {}
        self._last_decision_at: Optional[float] = None
        #: last time any score was above the baseline threshold
        self._last_activity_at = 0.0

    # ------------------------------------------------------------------
    # Introspection (used by tests and the strategy's gauges)
    # ------------------------------------------------------------------
    def is_armed(self, name: str) -> bool:
        return self._armed.get(name, False)

    def quiet_for(self, now: float) -> float:
        """How long every score has been at baseline."""
        return now - self._last_activity_at

    # ------------------------------------------------------------------
    def decide(
        self,
        now: float,
        scores: Dict[str, float],
        eligible: Callable[[str], bool],
    ) -> Optional[str]:
        """Pick the replica to rejuvenate this tick, or ``None``.

        ``eligible`` filters out replicas the strategy cannot act on right
        now (down, already recovering, concurrency cap reached). The
        quorum floor is *not* checked here — the strategy defers at the
        floor so the deferral is observable — but cooldown, hysteresis and
        decision spacing are.

        Picking is side-effect-free apart from re-arming and the activity
        clock: the caller confirms an actually-started rejuvenation with
        :meth:`note_fired` (a floor-deferred pick stays armed and is
        retried next tick).
        """
        opts = self.options
        if any(score > opts.baseline_threshold for score in scores.values()):
            self._last_activity_at = now

        # Re-arm fired replicas once their cooldown elapsed AND the score
        # left the hysteresis band: either it cleared (the evidence burst
        # decayed — normal case), or it sits back above the trigger (the
        # estimator was reset at rejuvenation-done and a grace window
        # discounts self-induced evidence, so a high score after cooldown
        # is *fresh* evidence of a persistent fault that warrants another
        # treatment). Scores hovering inside the band stay un-armed.
        for name, armed in self._armed.items():
            if armed:
                continue
            fired_at = self._fired_at.get(name)
            cooled = fired_at is None or now - fired_at >= opts.cooldown_ms
            score = scores.get(name, 0.0)
            if cooled and (score <= opts.clear_threshold
                           or score >= opts.trigger_threshold):
                self._armed[name] = True

        if (self._last_decision_at is not None
                and now - self._last_decision_at < opts.decision_gap_ms):
            return None

        best: Optional[str] = None
        best_score = 0.0
        for name in sorted(self._armed):
            score = scores.get(name, 0.0)
            if not self._armed[name] or score < opts.trigger_threshold:
                continue
            if not eligible(name):
                continue
            if best is None or score > best_score:
                best, best_score = name, score
        return best

    def note_fired(self, name: str, now: float) -> None:
        """Record a rejuvenation pick (targeted or fallback) for ``name``."""
        self._armed[name] = False
        self._fired_at[name] = now
        self._last_decision_at = now

    # ------------------------------------------------------------------
    def in_fallback(self, now: float) -> bool:
        """True once the quiet period warrants the periodic fallback."""
        return self.quiet_for(now) >= self.options.fallback_after_ms
