"""Per-replica health estimation: evidence in, suspicion scores out.

The estimator keeps one suspicion score per replica in ``[0, 1]``. Each
sense tick it first *decays* every score exponentially (half-life
``decay_half_life_ms`` — old evidence fades once a replica behaves), then
folds in the tick's :class:`~repro.control.signals.SignalBatch`:
``score += alpha * units * (1 - score)``, a saturating EWMA-style update
where ``units`` is the weighted evidence mass. Repeated weak evidence
approaches 1.0 asymptotically; a single strong signal (a crash) jumps
most of the way immediately.

A completed rejuvenation resets the replica's score to zero: the replica
just restarted from a clean, re-diversified image, so all prior evidence
is stale by construction.
"""

from __future__ import annotations

from typing import Dict, Sequence

from .options import ControlOptions
from .signals import SignalBatch

__all__ = ["HealthEstimator"]


class HealthEstimator:
    """EWMA suspicion scores driven by weighted signal batches."""

    def __init__(
        self, replica_names: Sequence[str], options: ControlOptions
    ) -> None:
        self.options = options
        self.scores: Dict[str, float] = {name: 0.0 for name in replica_names}

    # ------------------------------------------------------------------
    def observe(self, batch: SignalBatch, dt_ms: float) -> None:
        """Advance one sense interval: decay, then absorb the batch."""
        self._decay(dt_ms)
        opts = self.options
        for name, votes in batch.suspect_votes.items():
            self._bump(name, opts.weight_suspect * votes)
        for name in batch.crashed:
            self._bump(name, opts.weight_crash)
        for name, lag in batch.lagging.items():
            # deeper lag ⇒ more evidence, saturating at 3 thresholds
            depth = min(3.0, lag / opts.lag_threshold_seqs)
            self._bump(name, opts.weight_lag * depth)
        for name, hits in batch.overlay.items():
            self._bump(name, opts.weight_overlay * hits)
        if batch.violations and self.scores:
            # an invariant violation is a system-wide alarm with no named
            # culprit: spread the evidence across the whole fleet
            spread = opts.weight_violation * batch.violations / len(self.scores)
            for name in self.scores:
                self._bump(name, spread)

    def _decay(self, dt_ms: float) -> None:
        factor = 0.5 ** (dt_ms / self.options.decay_half_life_ms)
        for name, score in self.scores.items():
            self.scores[name] = score * factor

    def _bump(self, name: str, units: float) -> None:
        score = self.scores.get(name)
        if score is None:
            return  # evidence about a non-replica (stale site mapping)
        score += self.options.ewma_alpha * units * (1.0 - score)
        self.scores[name] = min(1.0, score)

    # ------------------------------------------------------------------
    def suspicion(self, name: str) -> float:
        return self.scores.get(name, 0.0)

    def reset(self, name: str) -> None:
        """A rejuvenation completed: the replica is clean by construction."""
        if name in self.scores:
            self.scores[name] = 0.0

    def max_score(self) -> float:
        return max(self.scores.values(), default=0.0)
