"""Hierarchical fleet topology generator.

Expands a :class:`~repro.fleet.spec.FleetSpec` into region shards with
populated device rosters: regions → substations → RTUs/PLCs, each device
assigned a poll-rate class by weighted draw.  The expansion is a pure
function of ``(spec, seed)``:

* every draw comes from one ``random.Random`` seeded with a string key
  derived from the seed — no ambient entropy, no hash-order iteration;
* regions are expanded in spec order, devices in index order, so the
  resulting rosters (and :meth:`FleetTopology.manifest`, the canonical
  image tests digest) are byte-identical across runs and platforms.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Tuple

from ..scada.region import RegionShard
from .spec import FleetSpec

__all__ = ["FleetTopology", "generate_fleet"]


@dataclass
class FleetTopology:
    """The expanded fleet: one :class:`RegionShard` per region."""

    spec: FleetSpec
    seed: int
    regions: List[RegionShard] = field(default_factory=list)

    @property
    def device_count(self) -> int:
        return sum(shard.device_count for shard in self.regions)

    def region(self, name: str) -> RegionShard:
        for shard in self.regions:
            if shard.name == name:
                return shard
        raise KeyError(f"no region {name!r} in fleet topology")

    def manifest(self) -> Tuple:
        """Canonical image of the generated topology.

        Pure tuples of primitives, in generation order — digest it to pin
        determinism (same seed ⇒ identical manifest, byte for byte).
        """
        return tuple(
            (
                shard.name,
                shard.base_tick_ms,
                shard.poll_intervals_ms,
                tuple(
                    (
                        slot.substation,
                        slot.unit_id,
                        slot.kind,
                        slot.poll_class,
                        round(slot.load_mw, 9),
                    )
                    for slot in shard.slots
                ),
            )
            for shard in self.regions
        )


def generate_fleet(spec: FleetSpec, seed: int) -> FleetTopology:
    """Expand ``spec`` into populated region shards, deterministically."""
    spec.validate()
    rng = random.Random(f"fleet-topology/{seed}")
    intervals = tuple(pc.interval_ms for pc in spec.poll_classes)
    weights = [pc.weight for pc in spec.poll_classes]
    total_weight = sum(weights)
    cumulative: List[float] = []
    acc = 0.0
    for weight in weights:
        acc += weight / total_weight
        cumulative.append(acc)
    topology = FleetTopology(spec=spec, seed=seed)
    for region_index, region in enumerate(spec.regions):
        shard = RegionShard(
            name=region.name,
            # distinct per-region grid noise streams, derived (not drawn)
            # so adding a region never shifts earlier regions' telemetry
            seed=seed * 1009 + region_index,
            poll_intervals_ms=intervals,
            base_tick_ms=spec.base_tick_ms,
        )
        for device_index in range(region.device_count):
            draw = rng.random()
            poll_class = next(
                index for index, edge in enumerate(cumulative) if draw <= edge
            )
            kind = "plc" if rng.random() < spec.plc_fraction else "rtu"
            load_mw = 5.0 + rng.random() * 20.0
            shard.add_slot(
                substation=f"{region.name}/s{device_index}",
                kind=kind,
                poll_class=poll_class,
                load_mw=load_mw,
            )
        topology.regions.append(shard)
    return topology
