"""Declarative description of a fleet-scale field deployment.

A :class:`FleetSpec` describes the hierarchical field topology — regions,
each with a device count — plus the heterogeneous poll-rate classes and
the open-loop operator-traffic process.  It is pure data: the generator
(:mod:`repro.fleet.generator`) expands it deterministically, and
:meth:`FleetSpec.validate` rejects inconsistent knob combinations before
any simulator state exists (wired into
:meth:`repro.core.deployment.SpireOptions.validate`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

__all__ = ["PollClass", "RegionSpec", "TrafficSpec", "FleetSpec",
           "DEFAULT_POLL_CLASSES"]


@dataclass(frozen=True)
class PollClass:
    """One poll-rate tier; devices are assigned tiers by weight."""

    name: str
    interval_ms: float
    weight: float


#: SCADA fleets are rate-heterogeneous: a few transmission-critical
#: devices poll fast, the bulk at the classic rate, telemetry-only
#: devices slowly.  Intervals are multiples of the 100 ms base tick.
DEFAULT_POLL_CLASSES: Tuple[PollClass, ...] = (
    PollClass("fast", 100.0, 0.15),
    PollClass("normal", 500.0, 0.55),
    PollClass("slow", 2000.0, 0.30),
)


@dataclass(frozen=True)
class RegionSpec:
    """One region (utility service territory): a name and device count."""

    name: str
    device_count: int


@dataclass(frozen=True)
class TrafficSpec:
    """Open-loop operator/HMI traffic.

    ``process`` selects the arrival process: ``"poisson"`` draws
    exponential inter-arrival gaps at ``rate_per_s``; ``"periodic"``
    issues at the fixed interval ``1000 / rate_per_s`` ms.
    """

    process: str = "poisson"
    rate_per_s: float = 2.0


@dataclass(frozen=True)
class FleetSpec:
    """Everything the hierarchical generator needs, and nothing runtime."""

    total_devices: int
    regions: Tuple[RegionSpec, ...]
    poll_classes: Tuple[PollClass, ...] = DEFAULT_POLL_CLASSES
    #: fraction of devices that are PLCs (protection-capable RTUs)
    plc_fraction: float = 0.2
    #: the region poll driver's tick; every class interval must be a
    #: positive integer multiple of it
    base_tick_ms: float = 100.0
    traffic: Optional[TrafficSpec] = TrafficSpec()

    @classmethod
    def sized(cls, total_devices: int, num_regions: Optional[int] = None,
              **overrides) -> "FleetSpec":
        """Evenly split ``total_devices`` across ``num_regions`` regions
        (remainder to the earliest regions) — the benchmark shape.

        With ``num_regions=None`` a region count is chosen so each region
        stays within the Modbus unit-id budget (at most 250 devices per
        serial bus), with a floor of 4 regions.
        """
        if num_regions is None:
            num_regions = max(4, -(-total_devices // 250))
        if num_regions < 1:
            raise ValueError(f"num_regions must be >= 1 (got {num_regions})")
        base, remainder = divmod(total_devices, num_regions)
        regions = tuple(
            RegionSpec(f"region{index}", base + (1 if index < remainder else 0))
            for index in range(num_regions)
        )
        return cls(total_devices=total_devices, regions=regions, **overrides)

    @property
    def device_count(self) -> int:
        return self.total_devices

    def validate(self) -> "FleetSpec":
        """Reject inconsistent fleet knobs with actionable errors."""
        if self.total_devices < 1:
            raise ValueError(
                f"total_devices must be >= 1 (got {self.total_devices})"
            )
        if not self.regions:
            raise ValueError("a fleet needs at least one region")
        names = [region.name for region in self.regions]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate region names in {names}")
        for region in self.regions:
            if region.device_count < 0:
                raise ValueError(
                    f"region {region.name!r} has negative device_count "
                    f"{region.device_count}"
                )
            if "/" in region.name:
                raise ValueError(
                    f"region name {region.name!r} must not contain '/' "
                    f"(it separates region from substation in device names)"
                )
            if region.device_count > 255:
                raise ValueError(
                    f"region {region.name!r} has {region.device_count} "
                    f"devices, but Modbus unit ids are one byte so a "
                    f"region (one serial bus) holds at most 255; add "
                    f"regions or use FleetSpec.sized(total) to auto-split"
                )
        per_region = sum(region.device_count for region in self.regions)
        if per_region != self.total_devices:
            raise ValueError(
                f"total_devices={self.total_devices} but the per-region "
                f"counts sum to {per_region} "
                f"({', '.join(f'{r.name}={r.device_count}' for r in self.regions)}); "
                f"fix the region counts or use FleetSpec.sized() to split "
                f"evenly"
            )
        if not 0.0 <= self.plc_fraction <= 1.0:
            raise ValueError(
                f"plc_fraction must be in [0, 1] (got {self.plc_fraction})"
            )
        if not self.poll_classes:
            raise ValueError("a fleet needs at least one poll class")
        if self.base_tick_ms <= 0:
            raise ValueError(
                f"base_tick_ms must be positive (got {self.base_tick_ms})"
            )
        for poll_class in self.poll_classes:
            if poll_class.weight <= 0:
                raise ValueError(
                    f"poll class {poll_class.name!r} needs a positive "
                    f"weight (got {poll_class.weight})"
                )
            ratio = poll_class.interval_ms / self.base_tick_ms
            if abs(ratio - round(ratio)) > 1e-9 or round(ratio) < 1:
                raise ValueError(
                    f"poll class {poll_class.name!r} interval "
                    f"{poll_class.interval_ms}ms is not a positive integer "
                    f"multiple of base_tick_ms={self.base_tick_ms}ms; the "
                    f"region driver can only fire on base ticks"
                )
        if self.traffic is not None:
            if self.traffic.process not in ("poisson", "periodic"):
                raise ValueError(
                    f"traffic process must be 'poisson' or 'periodic' "
                    f"(got {self.traffic.process!r})"
                )
            if self.traffic.rate_per_s <= 0:
                raise ValueError(
                    f"traffic rate_per_s must be positive (got "
                    f"{self.traffic.rate_per_s}); to disable operator "
                    f"traffic set traffic=None instead"
                )
        return self
