"""Fleet field stage: region proxies and deployment wiring.

This module is the fleet counterpart of
:meth:`repro.core.builder.DeploymentWiring.build_field` /
:meth:`~repro.core.builder.DeploymentWiring.wire`.  The deployment
constructor calls :func:`build_fleet_field` and :func:`wire_fleet` when
``options.fleet`` is set; the replica/HMI stages are shared with the
small-n path, so the two layouts differ only in the field layer.

Scale choices, and why they matter at 10k devices:

* one :class:`RegionProxy` per region, not one proxy per substation —
  each owns its shard's devices and a single
  :class:`~repro.scada.region.ShardedPollDriver` timer;
* devices, grid rows, and serial links materialize lazily on first poll
  or first command (see :class:`~repro.scada.region.RegionShard`);
* replicas route commands through a O(1) *resolver* function
  (``region/…`` prefix → proxy name) instead of a per-substation routing
  dict replicated n times.
"""

from __future__ import annotations

from typing import List, Optional

from ..core.builder import DeploymentWiring, TopologyBuilder
from ..core.proxy import DeviceBinding, RtuProxy, _PollState
from ..core.update import BreakerCommand
from ..scada.modbus import ReadRequest, encode_frame
from ..scada.region import DeviceSlot, RegionShard, ShardedPollDriver
from ..scada.rtu import MEASUREMENT_ORDER, RtuDevice
from .generator import generate_fleet
from .traffic import FleetTrafficDriver

__all__ = ["RegionProxy", "build_fleet_field", "wire_fleet"]


class RegionProxy(RtuProxy):
    """An RTU proxy fronting one region shard.

    Inherits the full client personality — signed submissions, threshold
    verification, command execution — and replaces only the polling
    layout: one sharded driver instead of the all-devices poll tick, and
    lazy device materialization instead of a prebuilt binding list.
    """

    def __init__(
        self,
        name: str,
        simulator,
        network,
        crypto,
        replicas: List[str],
        shard: RegionShard,
        driver_mode: str = "sharded",
        **kwargs,
    ) -> None:
        super().__init__(
            name, simulator, network, crypto, replicas, devices=[], **kwargs
        )
        self.shard = shard
        self._slots = {slot.substation: slot for slot in shard.slots}
        self.driver = ShardedPollDriver(
            self, shard, self._poll_slot, mode=driver_mode
        )

    # ------------------------------------------------------------------
    def start(self) -> None:
        self._started = True
        self.driver.start()
        self.every(self.submissions.resubmit_timeout_ms / 2, self._retry_tick)

    def on_recover(self) -> None:
        for state in self._polls.values():
            state.phase = "idle"
        if self._started:
            self.driver.start()
            self.every(
                self.submissions.resubmit_timeout_ms / 2, self._retry_tick
            )

    # ------------------------------------------------------------------
    def _binding_for(self, slot: DeviceSlot) -> DeviceBinding:
        """Materialize the slot's device on first contact."""
        binding = self.devices.get(slot.substation)
        if binding is None:
            device = self.shard.materialize(
                slot, self.simulator, self.network, self.name
            )
            binding = DeviceBinding(
                substation=slot.substation,
                device_name=device.name,
                unit_id=slot.unit_id,
                coil_ids=slot.coil_ids,
            )
            self.devices[slot.substation] = binding
            self._by_unit[slot.unit_id] = binding
            self._polls[slot.substation] = _PollState()
        return binding

    def _poll_slot(self, slot: DeviceSlot) -> None:
        """Serial Modbus poll of one due device (driver callback); same
        state machine as the base class's per-substation poll."""
        binding = self._binding_for(slot)
        state = self._polls[slot.substation]
        now = self.simulator.now
        if state.phase != "idle":
            if now - state.started_at > self.device_timeout_ms:
                self.polls_timed_out += 1
                state.phase = "idle"
            else:
                return
        state.phase = "await_regs"
        state.started_at = now
        frame = encode_frame(
            ReadRequest(binding.unit_id, 0, len(MEASUREMENT_ORDER))
        )
        self.send(binding.device_name, RtuDevice.wrap(frame), size_bytes=16)

    def _execute_command(self, command: BreakerCommand) -> None:
        # operator commands can target a not-yet-polled device; they
        # materialize it exactly like a first poll would
        slot = self._slots.get(command.substation)
        if slot is not None and command.substation not in self.devices:
            self._binding_for(slot)
        super()._execute_command(command)


# ----------------------------------------------------------------------
# Deployment stages
# ----------------------------------------------------------------------
def build_fleet_field(deployment, builder: TopologyBuilder) -> None:
    """Expand the fleet spec and instantiate one proxy per region,
    distributed round-robin across the overlay's field sites."""
    d = deployment
    opts = d.options
    topology = generate_fleet(opts.fleet, opts.seed)
    d.fleet_topology = topology
    sites = builder.field_sites()
    d.field_site = sites[0]
    # classic small-n attributes stay present so shared tooling (reports,
    # chaos guards) can introspect a fleet deployment without branching
    d.rtus = {}
    d.grid = topology.regions[0].grid
    d.region_proxies = []
    for index, shard in enumerate(topology.regions):
        proxy = RegionProxy(
            f"proxy:{shard.name}", d.simulator, d.network, d.crypto,
            replicas=[r.name for r in d.replicas],
            shard=shard,
            recorder=d.status_recorder,
            trace=d.trace,
            poll_interval_ms=opts.poll_interval_ms,
            resubmit_timeout_ms=opts.resubmit_timeout_ms,
            obs=d.obs,
        )
        proxy.stack = d.overlay.attach(proxy, sites[index % len(sites)])
        d.region_proxies.append(proxy)
    d.proxy = d.region_proxies[0]


def region_resolver(topology) -> "callable":
    """O(1) substation → proxy-name routing: fleet substations are named
    ``{region}/s{i}``, so the region prefix is the routing key."""
    proxy_names = {shard.name: f"proxy:{shard.name}" for shard in topology.regions}

    def resolve(substation: str) -> Optional[str]:
        region, _, _ = substation.partition("/")
        return proxy_names.get(region)

    return resolve


def wire_fleet(deployment, wiring: DeploymentWiring) -> None:
    """Subscriptions, command routing, accounting, and the open-loop
    traffic driver."""
    d = deployment
    resolve = region_resolver(d.fleet_topology)
    for replica in d.replicas:
        for hmi in d.hmis:
            replica.add_subscriber(hmi.name)
        replica.register_proxy_resolver(resolve)
    wiring.wire_delivery_accounting()
    spec = d.options.fleet
    if spec.traffic is not None and d.hmis:
        d.traffic_driver = FleetTrafficDriver(
            d.simulator, d.hmis, d.fleet_topology, spec.traffic,
            seed=d.options.seed,
        )
