"""Open-loop operator traffic for fleet scenarios.

Real control rooms generate command traffic independent of the system's
response rate — operators keep clicking whether or not the last command
confirmed.  :class:`OperatorTrafficModel` is the pure arrival/selection
stream (seed-deterministic, pre-drawable by tests);
:class:`FleetTrafficDriver` replays it onto the deployment's HMIs at
simulation time, issuing breaker commands against randomly selected fleet
devices.
"""

from __future__ import annotations

import random
from typing import List, Tuple

from .generator import FleetTopology
from .spec import TrafficSpec

__all__ = ["OperatorTrafficModel", "FleetTrafficDriver"]


class OperatorTrafficModel:
    """Pure stream of operator actions.

    Each :meth:`next_action` returns ``(gap_ms, region_index,
    device_index, close)`` drawn from one seeded RNG: when the next
    command arrives, which device it targets, and the commanded breaker
    position.  Two models with the same ``(spec, region_sizes, seed)``
    produce byte-identical streams — the determinism tests pin this.
    """

    def __init__(
        self, spec: TrafficSpec, region_sizes: List[int], seed: int
    ) -> None:
        if not region_sizes or all(size == 0 for size in region_sizes):
            raise ValueError("traffic needs at least one device to target")
        self.spec = spec
        self.region_sizes = list(region_sizes)
        self._rng = random.Random(f"fleet-traffic/{seed}")
        self._period_ms = 1000.0 / spec.rate_per_s
        self._rate_per_ms = spec.rate_per_s / 1000.0
        #: device selection is uniform over the whole fleet, so large
        #: regions see proportionally more operator attention
        self._total = sum(self.region_sizes)

    def next_action(self) -> Tuple[float, int, int, bool]:
        if self.spec.process == "poisson":
            gap_ms = self._rng.expovariate(self._rate_per_ms)
        else:
            gap_ms = self._period_ms
        flat = self._rng.randrange(self._total)
        region_index = 0
        while flat >= self.region_sizes[region_index]:
            flat -= self.region_sizes[region_index]
            region_index += 1
        close = self._rng.random() < 0.5
        return gap_ms, region_index, flat, close

    def preview(self, count: int) -> List[Tuple[float, int, int, bool]]:
        """The first ``count`` actions (consumes the stream) — for tests."""
        return [self.next_action() for _ in range(count)]


class FleetTrafficDriver:
    """Replays an :class:`OperatorTrafficModel` onto the HMIs.

    Open loop: the next arrival is scheduled as soon as the current one
    fires, regardless of whether the command ever confirms.  Commands
    round-robin across the deployment's HMIs.
    """

    def __init__(
        self,
        simulator,
        hmis: List,
        topology: FleetTopology,
        spec: TrafficSpec,
        seed: int,
    ) -> None:
        if not hmis:
            raise ValueError("fleet traffic needs at least one HMI")
        self.simulator = simulator
        self.hmis = hmis
        self.topology = topology
        self.model = OperatorTrafficModel(
            spec, [shard.device_count for shard in topology.regions], seed
        )
        self.commands_issued = 0
        self._stopped = False

    def start(self) -> None:
        self._arm()

    def stop(self) -> None:
        self._stopped = True

    def _arm(self) -> None:
        gap_ms, region_index, device_index, close = self.model.next_action()
        self.simulator.schedule(
            gap_ms, self._fire, region_index, device_index, close
        )

    def _fire(self, region_index: int, device_index: int, close: bool) -> None:
        if self._stopped:
            return
        shard = self.topology.regions[region_index]
        slot = shard.slots[device_index]
        # a fleet leaf has exactly one breaker: its feeder from the
        # region source (see RegionShard.materialize)
        breaker_id = f"{slot.substation}->{shard.source}"
        hmi = self.hmis[self.commands_issued % len(self.hmis)]
        hmi.operate_breaker(
            slot.substation, breaker_id, close, reason="fleet-traffic"
        )
        self.commands_issued += 1
        self._arm()
