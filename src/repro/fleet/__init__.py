"""Fleet-scale scenarios: hierarchical topologies, sharded field state,
open-loop operator traffic.

Set :attr:`repro.core.SpireOptions.fleet` to a :class:`FleetSpec` and the
deployment swaps its small-n field layer (one radial grid, one proxy) for
region shards with lazily-materialized devices::

    from repro.core import SpireDeployment, SpireOptions
    from repro.fleet import FleetSpec

    opts = SpireOptions.wan(seed=7, fleet=FleetSpec.sized(1000, num_regions=4))
    d = SpireDeployment(opts)
    d.start()
    d.run_for(10_000.0)

Everything stays on the one deterministic simulator: a fleet scenario is
reproducible from ``(options, seed)`` exactly like the paper figures.
"""

from .deploy import RegionProxy, build_fleet_field, region_resolver, wire_fleet
from .generator import FleetTopology, generate_fleet
from .spec import (
    DEFAULT_POLL_CLASSES,
    FleetSpec,
    PollClass,
    RegionSpec,
    TrafficSpec,
)
from .traffic import FleetTrafficDriver, OperatorTrafficModel

__all__ = [
    "RegionProxy",
    "build_fleet_field",
    "region_resolver",
    "wire_fleet",
    "FleetTopology",
    "generate_fleet",
    "DEFAULT_POLL_CLASSES",
    "FleetSpec",
    "PollClass",
    "RegionSpec",
    "TrafficSpec",
    "FleetTrafficDriver",
    "OperatorTrafficModel",
]
