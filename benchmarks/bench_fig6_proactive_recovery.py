"""F6 — Service behaviour during proactive recovery (paper Fig. flavour).

The ``2k`` term in ``3f + 2k + 1`` exists so the system stays live while
``k`` replicas rejuvenate. The bench runs the same workload with (a) the
paper's n=6 (k=1 budgeted) configuration under continuous rejuvenation,
and (b) an n=4 (k=0) configuration subjected to the same rejuvenation
schedule — which it has no budget for, so every recovery window risks a
stall whenever any other replica hiccups.
"""

from repro.analysis import print_table
from repro.core import SpireDeployment, SpireOptions

from common import once, reporter

RUN_MS = 40_000.0
PERIOD = 6_000.0
DURATION = 1_500.0


def run(f, k, placement):
    deployment = SpireDeployment(SpireOptions(
        num_substations=3,
        poll_interval_ms=250.0,
        seed=55,
        f=f, k=k,
        placement=placement,
        proactive_recovery=(PERIOD, DURATION),
    ))
    deployment.start()
    deployment.run_for(RUN_MS)
    stats = deployment.status_recorder.stats(since=2_000.0)
    availability = deployment.delivery_series.availability(
        2_000.0, RUN_MS - 1_000.0
    )
    submissions = deployment.proxy.submissions
    return {
        "stats": stats,
        "availability": availability,
        "outstanding": submissions.outstanding,
        "acked": submissions.acked_total,
        "recoveries": deployment.recovery_scheduler.recoveries_completed,
        "view_changes": max(r.view for r in deployment.replicas),
    }


def test_fig6_proactive_recovery(benchmark):
    emit = reporter("fig6_proactive_recovery")

    def scenario():
        with_budget = run(1, 1, {"cc1": 2, "cc2": 2, "dc1": 1, "dc2": 1})
        without_budget = run(1, 0, {"cc1": 1, "cc2": 1, "dc1": 1, "dc2": 1})
        return with_budget, without_budget

    with_budget, without_budget = once(benchmark, scenario)
    emit(f"F6: rejuvenation every {PERIOD / 1000:.0f} s "
         f"({DURATION / 1000:.1f} s each) under a 12 update/s workload")
    rows = []
    for label, result in (
        ("n=6 (3f+2k+1, k=1 budgeted)", with_budget),
        ("n=4 (3f+1, no recovery budget)", without_budget),
    ):
        rows.append([
            label, result["recoveries"], result["stats"].count,
            result["stats"].mean, result["stats"].p99,
            f"{result['availability']:.1%}", result["view_changes"],
        ])
    print_table(
        "service during continuous proactive recovery",
        ["configuration", "rejuvenations", "updates", "mean (ms)",
         "p99 (ms)", "availability", "views"],
        rows,
        out=emit,
    )
    emit("shape check: the k=1 configuration absorbs rejuvenation with high "
         "availability; the unbudgeted one degrades (quorum = all-but-zero "
         "margin while a replica is down).")
    assert with_budget["availability"] > 0.9
    assert with_budget["stats"].mean < 120.0
    # the unbudgeted configuration is strictly worse on availability or tail
    assert (
        without_budget["availability"] < with_budget["availability"]
        or without_budget["stats"].p99 > with_budget["stats"].p99
    )
