"""Fleet-scale saturation benchmark → ``BENCH_core.json`` ``fleet`` section.

Sweeps the hierarchical fleet generator (``repro.fleet``) over device
counts and records, per count:

* **saturation** — status updates/sim-second sustained through the full
  ordered pipeline, plus simulator events/wall-second;
* **memory ceiling** — peak RSS and live-object count, measured in an
  isolated subprocess per device count so the high-water marks don't
  contaminate each other.

Each sweep point runs ``--one N`` in a fresh interpreter (deterministic:
``PYTHONHASHSEED=0``, fixed seed).  The CI smoke gate (``--smoke
--check``) runs the 1k-device point and compares it against the committed
baseline: the throughput floor is host-calibrated by re-running the
frozen seed-implementation engine workload (same discipline as
``perf_core.py``), while the memory ceiling is a hard byte limit — RSS
does not scale with host speed.

Usage::

    python benchmarks/bench_fleet.py                   # sweep + print
    python benchmarks/bench_fleet.py --record          # sweep + fig9 + write baseline
    python benchmarks/bench_fleet.py --smoke --check   # CI gate vs BENCH_core.json
    python benchmarks/bench_fleet.py --fig9            # n=31 replicas, 10k devices
"""

from __future__ import annotations

import argparse
import gc
import json
import os
import platform
import subprocess
import sys
from time import perf_counter

_HERE = os.path.dirname(os.path.abspath(__file__))
_ROOT = os.path.dirname(_HERE)
for _path in (os.path.join(_ROOT, "src"), os.path.join(_HERE, "perf")):
    if _path not in sys.path:
        sys.path.insert(0, _path)

from repro.analysis import current_peak_rss  # noqa: E402
from repro.core import BatchingOptions, SpireDeployment, SpireOptions  # noqa: E402
from repro.fleet import FleetSpec  # noqa: E402

DEFAULT_OUTPUT = os.path.join(_ROOT, "BENCH_core.json")
REPORT_PATH = os.path.join(_HERE, "results", "fleet_sweep.txt")
SCENARIO_BASE = os.path.join(_HERE, "results", "fleet_1k_scenario_report")

#: (device_count, simulated ms) sweep points — windows shrink as counts
#: grow so the committed sweep stays a few minutes of wall clock
SWEEP = ((100, 3000.0), (1000, 3000.0), (5000, 2000.0), (10000, 2000.0))
SMOKE_DEVICES, SMOKE_SIM_MS = 1000, 1500.0
#: hard memory ceiling for the CI smoke point (1k devices); RSS is a
#: property of the code, not the host, so this is NOT host-calibrated
SMOKE_RSS_CEILING_BYTES = 512 * 1024 * 1024
FIG9_DEVICES, FIG9_SIM_MS = 10000, 500.0
SEED = 7
#: calibration workload size for the frozen seed-impl engine (host scale)
CALIB_EVENTS = 80_000


def fleet_options(devices: int, f: int = 1, k: int = 1,
                  observability: bool = False) -> SpireOptions:
    """The benchmark configuration: WAN preset, delivery batching on
    (the realistic fleet posture after PR 7), observability off for the
    measured runs so the numbers are the system's, not the telemetry's."""
    return SpireOptions.wan(
        seed=SEED,
        f=f,
        k=k,
        fleet=FleetSpec.sized(devices),
        observability=observability,
        batching=BatchingOptions(
            enabled=True, max_batch_size=64, max_batch_delay_ms=20.0
        ),
        # n=31 on flooding multiplies every frame by every site pair;
        # the scalability question is ordering cost, so route shortest
        overlay_mode="shortest" if f > 2 else "flooding",
    )


def run_one(devices: int, sim_ms: float, f: int = 1, k: int = 1) -> dict:
    """Build + run one fleet scenario; returns the metrics row."""
    build_started = perf_counter()
    deployment = SpireDeployment(fleet_options(devices, f=f, k=k))
    deployment.start()
    build_s = perf_counter() - build_started
    run_started = perf_counter()
    deployment.run_for(sim_ms)
    run_s = perf_counter() - run_started
    readings = sum(p.readings_submitted for p in deployment.region_proxies)
    commands = sum(p.commands_executed for p in deployment.region_proxies)
    materialized = sum(
        shard.materialized for shard in deployment.fleet_topology.regions
    )
    verified = (
        deployment.hmis[0].status_updates_seen if deployment.hmis else 0
    )
    gc.collect()
    events = deployment.simulator.events_processed
    return {
        "devices": devices,
        "regions": len(deployment.region_proxies),
        "replicas": len(deployment.replicas),
        "sim_ms": sim_ms,
        "build_wall_s": round(build_s, 4),
        "run_wall_s": round(run_s, 4),
        "events": events,
        "events_per_wall_s": round(events / run_s, 1),
        "readings_submitted": readings,
        "updates_per_sim_s": round(readings / (sim_ms / 1000.0), 1),
        "hmi_verified_updates": verified,
        "commands_executed": commands,
        "devices_materialized": materialized,
        "peak_rss_bytes": current_peak_rss(),
        "live_objects": len(gc.get_objects()),
    }


def run_isolated(devices: int, sim_ms: float, f: int = 1, k: int = 1,
                 emit=print) -> dict:
    """Run one sweep point in a fresh interpreter so peak-RSS high-water
    marks are per-point, not cumulative."""
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = "0"
    command = [
        sys.executable, os.path.abspath(__file__),
        "--one", str(devices), "--sim-ms", str(sim_ms),
        "--f", str(f), "--k", str(k),
    ]
    emit(f"  [{devices} devices] running isolated "
         f"({sim_ms:g} sim-ms, f={f}, k={k})...")
    proc = subprocess.run(
        command, env=env, capture_output=True, text=True, cwd=_ROOT
    )
    if proc.returncode != 0:
        raise RuntimeError(
            f"sweep point {devices} failed:\n{proc.stdout}\n{proc.stderr}"
        )
    return json.loads(proc.stdout.strip().splitlines()[-1])


def calibrate_host() -> float:
    """Events/sec of the frozen seed-impl engine on this host — the
    same normalization anchor ``perf_core.py`` uses, so committed floors
    transfer across machines."""
    from perf_core import bench_event_throughput

    return round(bench_event_throughput(CALIB_EVENTS, "seed", repeats=2), 1)


# ----------------------------------------------------------------------
# Sweep + report
# ----------------------------------------------------------------------
def run_sweep(emit=print) -> dict:
    rows = {}
    for devices, sim_ms in SWEEP:
        row = run_isolated(devices, sim_ms, emit=emit)
        rows[str(devices)] = row
        emit(f"    {devices:>6} devices: "
             f"{row['updates_per_sim_s']:>8,.0f} updates/sim-s, "
             f"{row['events_per_wall_s']:>8,.0f} events/wall-s, "
             f"peak {row['peak_rss_bytes'] / 2**20:>6.1f} MiB, "
             f"{row['live_objects']:,} objects")
    return rows


def write_report(sweep: dict, fig9: dict | None, path: str = REPORT_PATH,
                 emit=print) -> None:
    lines = [
        "Fleet-scale saturation sweep (benchmarks/bench_fleet.py)",
        f"(hierarchical generator, WAN preset, delivery batching B=64, "
        f"seed={SEED}, PYTHONHASHSEED=0; each point in a fresh process)",
        "",
        f"{'devices':>8} {'regions':>8} {'upd/sim-s':>10} {'ev/wall-s':>10} "
        f"{'wall s':>7} {'peak MiB':>9} {'objects':>10} {'materialized':>13}",
    ]
    for devices, _ in SWEEP:
        row = sweep.get(str(devices))
        if row is None:
            continue
        lines.append(
            f"{row['devices']:>8} {row['regions']:>8} "
            f"{row['updates_per_sim_s']:>10,.0f} "
            f"{row['events_per_wall_s']:>10,.0f} "
            f"{row['run_wall_s']:>7.1f} "
            f"{row['peak_rss_bytes'] / 2**20:>9.1f} "
            f"{row['live_objects']:>10,} "
            f"{row['devices_materialized']:>13}"
        )
    lines += [
        "",
        "updates/sim-s is the sustained rate of threshold-signed status",
        "readings through the full ordered pipeline (poll -> submit ->",
        "Prime ordering -> batched threshold signature -> HMI verify).",
        "The curve saturates as the ordering layer, not the field layer,",
        "becomes the bottleneck; memory stays region-sharded and lazy",
        "(devices materialize on first poll: see the materialized column).",
    ]
    if fig9 is not None:
        lines += [
            "",
            f"fig9-style scale-out: n={fig9['replicas']} replicas, "
            f"{fig9['devices']} devices, {fig9['sim_ms']:g} sim-ms -> "
            f"{fig9['readings_submitted']} readings ordered, "
            f"peak {fig9['peak_rss_bytes'] / 2**20:.1f} MiB.",
        ]
    lines.append("")
    os.makedirs(os.path.dirname(path), exist_ok=True)
    with open(path, "w") as handle:
        handle.write("\n".join(lines))
    emit(f"report -> {path}")


def write_scenario_report(emit=print) -> None:
    """A full observability scenario report for the smoke-sized point
    (run inline: this one is about the report fields, not the numbers)."""
    deployment = SpireDeployment(
        fleet_options(SMOKE_DEVICES, observability=True)
    )
    deployment.start()
    deployment.run_for(SMOKE_SIM_MS)
    from repro.analysis import ScenarioReport

    report = ScenarioReport.from_deployment(
        deployment,
        title=f"fleet {SMOKE_DEVICES} devices",
        extra={
            "regions": len(deployment.region_proxies),
            "readings_submitted": sum(
                p.readings_submitted for p in deployment.region_proxies
            ),
        },
    )
    json_path, txt_path = report.write(SCENARIO_BASE)
    emit(f"scenario report -> {json_path}, {txt_path}")


# ----------------------------------------------------------------------
# Baseline record / CI gate
# ----------------------------------------------------------------------
def _load(path: str) -> dict:
    if os.path.exists(path):
        with open(path) as handle:
            return json.load(handle)
    return {}


def record(sweep: dict, smoke: dict, fig9: dict | None,
           calib: float, path: str, emit=print) -> None:
    data = _load(path)
    section = data.setdefault("fleet", {})
    section["sweep"] = sweep
    section["smoke_baseline"] = smoke
    section["seed_event_throughput"] = calib
    section["smoke_rss_ceiling_bytes"] = SMOKE_RSS_CEILING_BYTES
    if fig9 is not None:
        section["fig9"] = fig9
    data.setdefault("meta", {})["python"] = platform.python_version()
    data["meta"]["machine"] = platform.machine()
    with open(path, "w") as handle:
        json.dump(data, handle, indent=2, sort_keys=True)
        handle.write("\n")
    emit(f"recorded fleet baseline -> {path}")


def check(smoke: dict, calib: float, path: str, tolerance: float,
          emit=print) -> bool:
    data = _load(path)
    baseline = data.get("fleet", {}).get("smoke_baseline")
    base_calib = data.get("fleet", {}).get("seed_event_throughput")
    ceiling = data.get("fleet", {}).get(
        "smoke_rss_ceiling_bytes", SMOKE_RSS_CEILING_BYTES
    )
    if baseline is None or not base_calib:
        emit(f"ERROR: no committed fleet smoke baseline in {path}")
        return False
    ok = True
    host_scale = calib / base_calib
    emit(f"  host speed vs baseline host: ×{host_scale:.3f} "
         f"(seed-impl calibration)")
    expected = baseline["events_per_wall_s"] * host_scale
    floor = expected * (1.0 - tolerance)
    emit(f"  event throughput: {smoke['events_per_wall_s']:,.0f}/s vs "
         f"normalized baseline {expected:,.0f}/s (floor {floor:,.0f}/s)")
    if smoke["events_per_wall_s"] < floor:
        emit("  FAIL: fleet event throughput regressed beyond tolerance")
        ok = False
    emit(f"  peak RSS: {smoke['peak_rss_bytes'] / 2**20:.1f} MiB vs hard "
         f"ceiling {ceiling / 2**20:.0f} MiB")
    if smoke["peak_rss_bytes"] > ceiling:
        emit("  FAIL: fleet memory ceiling exceeded")
        ok = False
    # the simulation itself is deterministic: the smoke point must order
    # exactly as many readings as the committed baseline did
    if smoke["readings_submitted"] != baseline["readings_submitted"]:
        emit(f"  FAIL: readings_submitted {smoke['readings_submitted']} != "
             f"baseline {baseline['readings_submitted']} (determinism or "
             f"behavior change — re-record the fleet baseline if intended)")
        ok = False
    else:
        emit(f"  determinism: {smoke['readings_submitted']} readings "
             f"submitted, exactly as baseline")
    emit("fleet check: " + ("OK" if ok else "REGRESSION DETECTED"))
    return ok


# ----------------------------------------------------------------------
def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--one", type=int, metavar="DEVICES",
                        help="run a single point and print JSON (internal)")
    parser.add_argument("--sim-ms", type=float, default=SMOKE_SIM_MS)
    parser.add_argument("--f", type=int, default=1)
    parser.add_argument("--k", type=int, default=1)
    parser.add_argument("--smoke", action="store_true",
                        help="run only the 1k-device CI point")
    parser.add_argument("--fig9", action="store_true",
                        help="also run the n=31-replica, 10k-device point")
    parser.add_argument("--record", action="store_true",
                        help="write baseline + committed reports")
    parser.add_argument("--check", action="store_true",
                        help="gate against the committed baseline")
    parser.add_argument("--tolerance", type=float, default=0.35)
    parser.add_argument("--json", default=DEFAULT_OUTPUT)
    parser.add_argument("--out", help="write this run's raw JSON to PATH "
                                      "(CI artifact)")
    args = parser.parse_args(argv)

    if args.one is not None:
        print(json.dumps(run_one(args.one, args.sim_ms, f=args.f, k=args.k)))
        return 0

    emit = print
    results: dict = {}
    calib = calibrate_host()
    emit(f"bench_fleet: host calibration {calib:,.0f} seed events/s")

    if args.smoke:
        smoke = run_isolated(SMOKE_DEVICES, SMOKE_SIM_MS, emit=emit)
        results["smoke"] = smoke
        emit(f"  1k smoke: {smoke['updates_per_sim_s']:,.0f} updates/sim-s, "
             f"{smoke['events_per_wall_s']:,.0f} events/wall-s, "
             f"peak {smoke['peak_rss_bytes'] / 2**20:.1f} MiB")
    else:
        results["sweep"] = run_sweep(emit=emit)
        results["smoke"] = run_isolated(SMOKE_DEVICES, SMOKE_SIM_MS, emit=emit)

    fig9 = None
    if args.fig9:
        fig9 = run_isolated(FIG9_DEVICES, FIG9_SIM_MS, f=8, k=3, emit=emit)
        results["fig9"] = fig9
        emit(f"  fig9-style n={fig9['replicas']}: {fig9['readings_submitted']}"
             f" readings in {fig9['sim_ms']:g} sim-ms, "
             f"peak {fig9['peak_rss_bytes'] / 2**20:.1f} MiB")

    if args.out:
        with open(args.out, "w") as handle:
            json.dump(results, handle, indent=2, sort_keys=True)
            handle.write("\n")
    if args.record:
        if "sweep" not in results:
            results["sweep"] = run_sweep(emit=emit)
        record(results["sweep"], results["smoke"], fig9, calib,
               args.json, emit=emit)
        write_report(results["sweep"], fig9, emit=emit)
        write_scenario_report(emit=emit)
    if args.check:
        if not check(results["smoke"], calib, args.json, args.tolerance,
                     emit=emit):
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
