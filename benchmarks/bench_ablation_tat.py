"""A2 — Ablation: the suspect-leader aggressiveness constant (K_lat).

Prime's acceptable turnaround time is ``K_lat * achievable_rtt +
pre_prepare_interval + slack``. Small K_lat reacts faster to a degraded
leader but risks spurious view changes under benign jitter; large K_lat
tolerates more attack-induced delay before rotating. The bench sweeps
K_lat under (a) a benign jittery network and (b) a 250 ms leader DoS, and
reports view changes plus latency in each — mapping the trade-off the
paper's design point (fast detection, no false positives) sits on.
"""

import dataclasses

from repro.analysis import print_table
from repro.core import SpireDeployment, SpireOptions
from repro.simnet import DosAttack, FailureInjector

from common import once, reporter

RUN_MS = 18_000.0
ATTACK_START = 4_000.0
ATTACK_LEN = 10_000.0


def run_case(k_lat, attacked):
    deployment = SpireDeployment(SpireOptions(
        num_substations=3, poll_interval_ms=250.0, seed=71,
    ))
    config = dataclasses.replace(
        deployment.prime_config, tat_latency_factor=k_lat
    )
    for replica in deployment.replicas:
        replica.config = config
        replica.monitor.config = config
        replica.view_manager.config = config
        replica.checkpoints.config = config
    deployment.prime_config = config
    deployment.start()
    deployment.run_for(1_000)
    if attacked:
        injector = FailureInjector(deployment.simulator, deployment.network)
        leader = deployment.current_leader()
        injector.dos_node(
            DosAttack(leader, ATTACK_START, ATTACK_LEN,
                      extra_delay_ms=250.0, extra_loss=0.0),
            peers=deployment.dos_peers_of(leader),
        )
    deployment.run_for(RUN_MS - 1_000)
    stats = deployment.status_recorder.stats(since=1_000.0)
    views = max(replica.view for replica in deployment.replicas)
    return views, stats


def test_ablation_tat_bound(benchmark):
    emit = reporter("ablation_tat")

    def scenario():
        rows = []
        for k_lat in (1.5, 3.0, 6.0, 12.0):
            benign_views, benign_stats = run_case(k_lat, attacked=False)
            attack_views, attack_stats = run_case(k_lat, attacked=True)
            rows.append([
                k_lat, benign_views, benign_stats.mean,
                attack_views, attack_stats.mean, attack_stats.p99,
            ])
        return rows

    rows = once(benchmark, scenario)
    emit("A2: K_lat sweep — benign network vs 250 ms leader DoS")
    print_table(
        "suspect-leader aggressiveness trade-off",
        ["K_lat", "benign views", "benign mean (ms)",
         "attacked views", "attacked mean (ms)", "attacked p99 (ms)"],
        rows,
        out=emit,
    )
    emit("shape check: no spurious view changes at any K_lat under benign "
         "jitter; every setting eventually detects this DoS (it exceeds "
         "even the laxest bound), but the latency tail (p99) grows with "
         "K_lat — the exposure window before replacement lengthens.")
    by_k = {row[0]: row for row in rows}
    # benign: never any spurious view change
    assert all(row[1] == 0 for row in rows)
    # the design point (3.0) detects the attack
    assert by_k[3.0][3] >= 1
    # a more tolerant bound leaves a longer exposure tail
    assert by_k[12.0][5] >= by_k[1.5][5]
    # benign latency is unaffected by the bound choice
    benign_means = [row[2] for row in rows]
    assert max(benign_means) - min(benign_means) < 10.0
