"""T2 — Fault-free update latency statistics on a LAN (paper Table II
flavour).

Ten emulated RTUs polled at 10 Hz through the full Spire stack, all six
replicas co-located on one LAN. The paper reports fault-free LAN latencies
of a few tens of milliseconds dominated by Prime's aggregation intervals;
the reproduced distribution should sit in the same range and be tight.
"""

from repro.analysis import print_table
from repro.core import SpireDeployment, SpireOptions
from repro.spines import lan_topology

from common import once, reporter

RUN_MS = 12_000.0


def run_lan():
    deployment = SpireDeployment(
        # single-site topology: flooding and shortest-path routing are
        # equivalent, so the lan() preset reproduces the seed numbers
        SpireOptions.lan(
            num_substations=10,
            poll_interval_ms=100.0,
            placement={"lan0": 6},
            seed=101,
        ),
        topology=lan_topology(1),
    )
    deployment.start()
    deployment.run_for(RUN_MS)
    return deployment


def test_table2_lan_latency(benchmark):
    emit = reporter("table2_lan_latency")
    deployment = once(benchmark, run_lan)
    stats = deployment.status_recorder.stats(since=1_000.0)
    emit("T2: fault-free LAN latency, 10 RTUs @ 10 Hz, 6 replicas (f=1, k=1)")
    print_table(
        "Table II — LAN update latency (ms)",
        ["updates", "mean", "median", "p90", "p99", "p99.9", "max"],
        [[stats.count, stats.mean, stats.median, stats.p90, stats.p99,
          stats.p999, stats.maximum]],
        out=emit,
    )
    throughput = stats.count / ((RUN_MS - 1_000.0) / 1000.0)
    emit(f"throughput sustained: {throughput:.0f} updates/s "
         f"(offered: ~100 updates/s)")
    assert stats.count > 800
    assert stats.mean < 50.0     # LAN latencies are tens of ms at most
    assert throughput > 80.0
