"""T7 — Red-team exercise outcome: traditional SCADA vs Spire.

Reproduces the paper's resiliency-exercise result as a table: the same
scripted intrusion campaign run against (a) a traditional single-master
SCADA system with hot standby, and (b) Spire with diversity and proactive
recovery. The paper reports the traditional configurations were
compromised (attacker operated the process), while Spire withstood the
full exercise with service intact.
"""

from repro.analysis import print_table
from repro.attacks import SpireCampaign, TraditionalCampaign
from repro.baselines import TraditionalDeployment
from repro.core import SpireDeployment, SpireOptions

from common import once, reporter

RUN_MS = 40_000.0


def run_both():
    traditional = TraditionalDeployment(num_substations=6, seed=21)
    campaign_t = TraditionalCampaign(
        traditional, breach_time_ms=8_000.0, sabotage_interval_ms=400.0,
    )
    traditional.start()
    campaign_t.start()
    traditional.run_for(RUN_MS)

    spire = SpireDeployment(SpireOptions(
        num_substations=6, poll_interval_ms=250.0, seed=21,
        proactive_recovery=(8_000.0, 500.0),
    ))
    campaign_s = SpireCampaign(
        spire, first_attempt_ms=8_000.0, dwell_ms=5_000.0,
        attempt_interval_ms=5_000.0,
    )
    spire.start()
    campaign_s.start()
    spire.run_for(RUN_MS)
    return (traditional, campaign_t), (spire, campaign_s)


def test_table7_red_team(benchmark):
    emit = reporter("table7_red_team")
    (traditional, campaign_t), (spire, campaign_s) = once(benchmark, run_both)
    total_t = traditional.grid.total_load_mw()
    total_s = spire.grid.total_load_mw()
    spire_stats = spire.status_recorder.stats()
    rows = [
        [
            "traditional (1 master + standby)",
            campaign_t.result.exploit_attempts,
            campaign_t.result.exploit_successes,
            campaign_t.result.unauthorized_operations,
            f"{campaign_t.result.min_served_fraction(total_t):.0%}",
            "COMPROMISED",
        ],
        [
            "Spire (f=1, diversity, recovery)",
            campaign_s.result.exploit_attempts,
            campaign_s.result.exploit_successes,
            campaign_s.result.unauthorized_operations,
            f"{campaign_s.result.min_served_fraction(total_s):.0%}",
            "SERVICE MAINTAINED",
        ],
    ]
    emit("T7: identical intrusion campaign against both systems "
         f"({RUN_MS / 1000:.0f} s, breach attempts from t=8 s)")
    print_table(
        "red-team exercise outcome",
        ["system", "exploit attempts", "landed", "unauthorized breaker ops",
         "min served load", "verdict"],
        rows,
        out=emit,
    )
    evicted = spire.trace.count(component="campaign", kind="evicted")
    emit(f"Spire: {evicted} intrusions evicted by proactive recovery; "
         f"{spire_stats.count} updates delivered at mean "
         f"{spire_stats.mean:.1f} ms throughout the exercise")
    emit("paper reference: red team took control of the traditional "
         "configurations; Spire withstood the multi-day exercise")
    # outcome assertions (the paper's result, in shape)
    assert campaign_t.result.min_served_fraction(total_t) < 0.2
    assert campaign_t.result.unauthorized_operations > 10
    assert campaign_s.result.min_served_fraction(total_s) > 0.95
    assert spire.grid.served_load_mw() == spire.grid.total_load_mw()
    assert spire_stats.count > 500
