"""T1 — Resilience configuration table (paper Table I).

Regenerates the table of minimal replica placements for tolerating f
intrusions and k simultaneous proactive recoveries, with and without the
failure of an entire site, across control-center / data-center layouts.
Every row is verified by exhaustively checking all single-site failures.
"""

from repro.analysis import print_table
from repro.core import configuration_table, minimal_placement, placement_survives

from common import once, reporter


def build_table():
    rows = []
    for config in configuration_table(f_values=(1, 2), k_values=(0, 1)):
        survives_all = placement_survives(config, None) and all(
            placement_survives(config, failed)
            for failed in range(config.num_sites)
            if config.tolerates_site_failure
        )
        cc = "+".join(str(c) for c in config.control_centers)
        dc = "+".join(str(c) for c in config.data_centers) or "-"
        rows.append([
            config.f, config.k, len(config.control_centers),
            len(config.data_centers), cc, dc, config.n,
            "yes" if config.tolerates_site_failure else "no",
            "ok" if survives_all else "FAIL",
        ])
    return rows


def test_table1_configurations(benchmark):
    emit = reporter("table1_configurations")
    rows = once(benchmark, build_table)
    emit("T1: minimal replica placements (verified by exhaustive site-failure check)")
    print_table(
        "Table I — resilience configurations",
        ["f", "k", "#CC", "#DC", "CC placement", "DC placement", "n",
         "site-fault", "verified"],
        rows,
        out=emit,
    )
    emit("")
    emit("Canonical deployment (paper): f=1, k=1 -> n = 3f+2k+1 = 6 replicas;")
    emit("with single-site-failure tolerance over 4 sites the minimum grows to "
         f"{minimal_placement(1, 1, 2, 2).n} (2+2+2+2).")
    assert all(row[-1] == "ok" for row in rows)
