"""F5 — Latency timeline under a leader-targeted DoS: Spire vs PBFT
baseline (the paper's performance-under-attack figure).

A network attacker adds 300 ms of delay to the current leader's links for
a 12-second window. Spire's TAT monitoring replaces the leader and latency
re-bounds; the static-timeout baseline never escapes (the delay sits below
its timeout) and every update pays the full penalty until the attack ends.
"""

import statistics

from repro.analysis import print_series, print_table
from repro.core import SpireDeployment, SpireOptions
from repro.crypto import FastCrypto
from repro.pbft import PbftConfig, PbftNode
from repro.prime import LoggingApp, sign_client_update
from repro.simnet import DosAttack, FailureInjector, LinkSpec, Network, Simulator

from common import once, reporter

ATTACK_START = 5_000.0
ATTACK_LEN = 12_000.0
RUN_MS = 22_000.0
EXTRA_DELAY = 300.0


def run_spire():
    deployment = SpireDeployment(SpireOptions(
        num_substations=3, poll_interval_ms=250.0, seed=7,
    ))
    deployment.start()
    deployment.run_for(2_000)
    injector = FailureInjector(deployment.simulator, deployment.network)
    leader = deployment.current_leader()
    injector.dos_node(
        DosAttack(leader, ATTACK_START, ATTACK_LEN,
                  extra_delay_ms=EXTRA_DELAY, extra_loss=0.05),
        peers=deployment.dos_peers_of(leader),
    )
    deployment.run_for(RUN_MS - 2_000)
    views = max(replica.view for replica in deployment.replicas)
    return deployment.status_recorder, views


def run_pbft():
    simulator = Simulator(seed=7)
    network = Network(simulator, LinkSpec(latency_ms=8.0, jitter_ms=0.5))
    crypto = FastCrypto(seed="f5")
    names = tuple(f"replica:{i}" for i in range(6))
    config = PbftConfig(names, num_faults=1, request_timeout_ms=2_000.0)
    nodes = [PbftNode(name, simulator, network, config, crypto, LoggingApp())
             for name in names]
    for node in nodes:
        node.start()
    injector = FailureInjector(simulator, network)
    injector.dos_node(
        DosAttack("replica:0", ATTACK_START, ATTACK_LEN,
                  extra_delay_ms=EXTRA_DELAY, extra_loss=0.05),
        peers=list(names[1:]),
    )
    done = {}
    submitted = {}
    for node in nodes:
        node.execution_listeners.append(
            lambda u, i, r: done.setdefault((u.client, u.client_seq),
                                            simulator.now)
        )
    seq = 0
    while simulator.now < RUN_MS:
        seq += 1
        submitted[("c", seq)] = simulator.now
        nodes[2].submit(sign_client_update(crypto, "c", seq, ("reading", seq)))
        simulator.run_for(250.0)
    simulator.run_for(3_000)
    from repro.obs import LatencyTracker

    recorder = LatencyTracker()
    for key, start in submitted.items():
        if key in done:
            recorder.submitted(key, start)
            recorder.acknowledged(key, done[key])
    return recorder, max(node.view for node in nodes)


def window_mean(recorder, start, end):
    values = recorder.latencies(since=start, until=end)
    return statistics.mean(values) if values else float("nan")


def test_fig5_leader_dos(benchmark):
    emit = reporter("fig5_leader_dos")

    def scenario():
        return run_spire(), run_pbft()

    (spire_recorder, spire_views), (pbft_recorder, pbft_views) = once(
        benchmark, scenario
    )
    emit("F5: latency timeline under leader-targeted DoS "
         f"(+{EXTRA_DELAY:.0f} ms on leader links, t=5..17 s)")
    print_series("Spire / Prime (mean latency per second, ms)",
                 [(t, v) for t, v, _ in spire_recorder.timeline(1000.0)],
                 out=emit)
    print_series("PBFT baseline (mean latency per second, ms)",
                 [(t, v) for t, v, _ in pbft_recorder.timeline(1000.0)],
                 out=emit)
    rows = []
    for label, recorder, views in (
        ("Spire/Prime", spire_recorder, spire_views),
        ("PBFT baseline", pbft_recorder, pbft_views),
    ):
        rows.append([
            label,
            window_mean(recorder, 0.0, ATTACK_START),
            window_mean(recorder, ATTACK_START + 2_000.0,
                        ATTACK_START + ATTACK_LEN),
            window_mean(recorder, ATTACK_START + ATTACK_LEN + 1_000.0, RUN_MS),
            views,
        ])
    print_table(
        "mean latency by phase (ms)",
        ["system", "before", "during attack (after 2s)", "after", "view changes"],
        rows,
        out=emit,
    )
    spire_during = rows[0][2]
    pbft_during = rows[1][2]
    emit(f"degradation factor while under attack: baseline/Spire = "
         f"{pbft_during / spire_during:.1f}x (paper: order-of-magnitude)")
    # shape assertions: Prime view-changes and re-bounds; baseline does not
    assert spire_views >= 1
    assert pbft_views == 0
    assert pbft_during > EXTRA_DELAY  # every baseline update pays the delay
    assert spire_during < EXTRA_DELAY / 2
    assert pbft_during / spire_during > 3.0
