"""Benchmark collection setup and result-table reporting.

Each benchmark writes its regenerated paper table to
``benchmarks/results/<name>.txt`` (pytest's fd-level capture swallows
stdout even via ``sys.__stdout__``). The terminal-summary hook below runs
*after* capture ends and replays every table into the real terminal
output, so ``pytest benchmarks/ --benchmark-only | tee bench_output.txt``
records them.
"""

import os
import sys
import time

sys.path.insert(0, os.path.dirname(__file__))

_SESSION_START = time.time()
_RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not os.path.isdir(_RESULTS_DIR):
        return
    fresh = [
        name for name in sorted(os.listdir(_RESULTS_DIR))
        if name.endswith(".txt")
        and os.path.getmtime(os.path.join(_RESULTS_DIR, name)) >= _SESSION_START - 1
    ]
    if not fresh:
        return
    write = terminalreporter.write_line
    write("")
    write("=" * 78)
    write("REGENERATED PAPER TABLES / FIGURES (also in benchmarks/results/)")
    write("=" * 78)
    for name in fresh:
        write("")
        write(f"### {name}")
        with open(os.path.join(_RESULTS_DIR, name)) as handle:
            for line in handle.read().splitlines():
                write(line)

def pytest_addoption(parser):
    parser.addoption(
        "--chaos", action="store_true", default=False,
        help="run the long opt-in chaos sweep benchmarks",
    )
    parser.addoption(
        "--smoke", action="store_true", default=False,
        help="run shortened (CI-sized) benchmark workloads",
    )


def pytest_collection_modifyitems(config, items):
    if config.getoption("--chaos"):
        return
    import pytest

    skip_chaos = pytest.mark.skip(reason="opt-in chaos sweep: pass --chaos")
    for item in items:
        if "chaos" in item.keywords:
            item.add_marker(skip_chaos)
