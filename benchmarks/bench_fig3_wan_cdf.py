"""F3 — Update-latency CDF: emulated wide-area vs LAN (paper Fig. CDF).

The paper's wide-area deployment (2 control centers + 2 data centers on
the US East coast) delivered updates tens of milliseconds slower than the
LAN testbed but with the same tight distribution shape. The bench replays
the same workload over both topologies and prints the two CDFs, then
dumps each run's full :class:`repro.analysis.ScenarioReport`.
"""

from repro.analysis import print_table
from repro.core import SpireDeployment, SpireOptions
from repro.spines import lan_topology, wide_area_topology

from common import once, reporter, write_scenario_report

RUN_MS = 12_000.0
PERCENTILE_MARKS = (0.10, 0.25, 0.50, 0.75, 0.90, 0.99, 0.999, 1.0)


def run_pair():
    results = {}
    for label, options, topology in (
        # both legs flood the overlay so the only variable is the
        # topology + Prime timeout preset, as in the paper's comparison
        ("LAN", SpireOptions.lan(
            num_substations=5, poll_interval_ms=100.0,
            placement={"lan0": 6}, overlay_mode="flooding", seed=31,
        ), lan_topology(1)),
        ("WAN", SpireOptions.wan(
            num_substations=5, poll_interval_ms=100.0, seed=31,
        ), wide_area_topology()),
    ):
        deployment = SpireDeployment(options, topology=topology)
        deployment.start()
        deployment.run_for(RUN_MS)
        results[label] = deployment
    return results


def test_fig3_wan_cdf(benchmark):
    emit = reporter("fig3_wan_cdf")
    results = once(benchmark, run_pair)
    emit("F3: update-latency CDF, LAN vs emulated wide-area "
         "(5 RTUs @ 10 Hz, 6 replicas)")
    lan_recorder = results["LAN"].status_recorder
    wan_recorder = results["WAN"].status_recorder
    rows = []
    lan = lan_recorder.cdf_at_marks(PERCENTILE_MARKS)
    wan = wan_recorder.cdf_at_marks(PERCENTILE_MARKS)
    for mark, lan_value, wan_value in zip(PERCENTILE_MARKS, lan, wan):
        rows.append([f"{mark:.1%}", lan_value, wan_value])
    print_table(
        "latency at CDF fraction (ms)",
        ["fraction", "LAN", "wide-area"],
        rows,
        out=emit,
    )
    lan_stats = lan_recorder.stats()
    wan_stats = wan_recorder.stats()
    emit(f"LAN : {lan_stats.row()}")
    emit(f"WAN : {wan_stats.row()}")
    emit("shape check: WAN slower than LAN but both distributions tight "
         "(paper: wide-area avg ~43-60 ms, overwhelmingly < 100 ms)")
    assert wan_stats.mean > lan_stats.mean
    assert wan_stats.mean < 100.0
    fraction_under_100 = sum(
        1 for _, latency in wan_recorder.samples if latency < 100.0
    ) / max(1, len(wan_recorder.samples))
    emit(f"WAN fraction under 100 ms: {fraction_under_100:.3%}")
    assert fraction_under_100 > 0.95
    for label, deployment in results.items():
        write_scenario_report(
            f"fig3_wan_cdf_{label.lower()}", deployment,
            title=f"fig3 {label} leg",
        )
