"""FC — Feedback-driven vs. periodic proactive recovery under attack.

The paper's proactive recovery rejuvenates replicas on a blind rotation:
a compromised replica keeps running its suspect image until its slot
comes around (expected exposure ``n * period / 2``). The
``repro.control`` feedback loop instead watches Prime Suspect votes,
crash/lag probes and overlay health, and spends its next rejuvenation on
the replica the evidence points at.

This bench injects one fault family per run — leader kill, gray-failing
(slow) leader, DoS — against the same deployment under both strategies
and compares:

* **MTTD** — fault onset to the controller decision (feedback) or to the
  rotation happening to reach the faulted replica (periodic);
* **MTTR** — detection to rejuvenation complete;
* **exposure** — fault onset until the faulted replica has been
  rejuvenated (capped at run end when the rotation never gets there);
* **availability** and **rejuvenations spent** over the whole run.

A quiet (fault-free) family checks the controller's fallback: with no
evidence it degrades to the periodic cadence rather than going idle.
Fault times are staggered across seeds so the periodic arm samples
different phases of its rotation rather than one lucky/unlucky slot.
"""

from repro.analysis import print_table
from repro.control import ControlOptions
from repro.core import SpireDeployment, SpireOptions
from repro.obs import (
    COMP_RECOVERY_CONTROLLER,
    COMP_RECOVERY_SCHEDULER,
    EV_CONTROL_DECISION,
    EV_REJUVENATE_DONE,
    EV_REJUVENATE_START,
)
from repro.parallel import CampaignTask, resolve_workers, run_campaign
from repro.simnet import DosAttack, FailureInjector

from common import once, reporter, write_scenario_report

PERIOD_MS = 4_000.0
DURATION_MS = 500.0
CRASH_MS = 1_500.0
FAMILIES = ("leader_kill", "slow_node", "dos", "quiet")

#: (seed, fault_ms) pairs — staggered so the periodic rotation is caught
#: at different phases; the full run extends past one complete rotation
FULL_CASES = [(7, 4_500.0), (11, 10_500.0), (13, 16_500.0)]
FULL_RUN_MS = 32_000.0
SMOKE_CASES = [(7, 4_500.0)]
SMOKE_RUN_MS = 18_000.0


def _inject(family, deployment, injector, fault_ms, record):
    """Schedule one fault at ``fault_ms``; the target (the leader at that
    moment, for every family) is resolved at fire time and recorded."""

    def fire():
        target = deployment.current_leader()
        record["target"] = target
        if family == "leader_kill":
            injector.crash_window(target, fault_ms + 1.0, CRASH_MS)
        elif family == "slow_node":
            injector.slow_node(
                target, fault_ms + 1.0, 60_000.0, extra_delay_ms=150.0,
            )
        elif family == "dos":
            injector.dos_node(
                DosAttack(
                    target=target, start_ms=fault_ms + 1.0,
                    duration_ms=60_000.0,
                    extra_delay_ms=300.0, extra_loss=0.2,
                ),
                peers=deployment.dos_peers_of(target),
            )

    deployment.simulator.schedule_at(fault_ms, fire)


def _run_one(family, strategy, seed, fault_ms, run_ms):
    control = ControlOptions() if strategy == "feedback" else None
    deployment = SpireDeployment(SpireOptions(
        num_substations=2,
        poll_interval_ms=250.0,
        seed=seed,
        f=1, k=1,
        proactive_recovery=(PERIOD_MS, DURATION_MS),
        control=control,
    ))
    record = {}
    if family != "quiet":
        injector = FailureInjector(deployment.simulator, deployment.network)
        _inject(family, deployment, injector, fault_ms, record)
    deployment.start()
    deployment.run_for(run_ms)

    availability = deployment.delivery_series.availability(
        2_000.0, run_ms - 1_000.0
    )
    result = {
        "availability": availability,
        "rejuvenations": deployment.recovery_scheduler.recoveries_completed,
        "mttd": None, "mttr": None, "exposure": None, "capped": False,
    }
    target = record.get("target")
    if target is not None:
        trace = deployment.trace
        if strategy == "feedback":
            detections = [
                e.time for e in trace.events(
                    COMP_RECOVERY_CONTROLLER, EV_CONTROL_DECISION)
                if e.details.get("replica") == target and e.time >= fault_ms
            ]
        else:
            detections = [
                e.time for e in trace.events(
                    COMP_RECOVERY_SCHEDULER, EV_REJUVENATE_START)
                if e.details.get("replica") == target and e.time >= fault_ms
            ]
        # only a rejuvenation *started* after the fault repairs it; one
        # completing just past onset began on the pre-fault image
        detected = detections[0] if detections else None
        repaired = None
        if detected is not None:
            dones = [
                e.time for e in trace.events(
                    COMP_RECOVERY_SCHEDULER, EV_REJUVENATE_DONE)
                if e.details.get("replica") == target and e.time > detected
            ]
            repaired = dones[0] if dones else None
        result["mttd"] = (detected - fault_ms) if detected is not None else None
        if detected is not None and repaired is not None:
            result["mttr"] = repaired - detected
        if repaired is not None:
            result["exposure"] = repaired - fault_ms
        else:
            # rotation never reached the faulted replica before run end
            result["exposure"] = run_ms - fault_ms
            result["capped"] = True
    return result, deployment


def run_cell(options, schedule):
    """Campaign-runner entry for one matrix cell (module-path runner
    ``"bench_feedback_control:run_cell"``; the benchmarks dir is on
    ``sys.path`` in spawned workers). ``options`` is a plain dict; the
    scenario report for the showcase cell is written in-worker and its
    paths returned in the payload."""
    result, deployment = _run_one(
        options["family"], options["strategy"], options["seed"],
        options["fault_ms"], options["run_ms"],
    )
    report_paths = None
    if options.get("write_report"):
        report_paths = write_scenario_report(
            "feedback_control", deployment,
            title="feedback-driven recovery, leader-kill "
                  f"fault (seed {options['seed']})",
            extra={
                "family": options["family"],
                "fault_ms": options["fault_ms"],
                "exposure_ms": result["exposure"],
                "mttd_ms": result["mttd"],
            },
        )
    return {"ok": True, "stats": result, "report_paths": report_paths}


def _mean(values):
    values = [v for v in values if v is not None]
    return sum(values) / len(values) if values else None


def _fmt_ms(value):
    return f"{value / 1000.0:.2f}" if value is not None else "-"


def test_feedback_control(benchmark, request):
    smoke = request.config.getoption("--smoke")
    cases = SMOKE_CASES if smoke else FULL_CASES
    run_ms = SMOKE_RUN_MS if smoke else FULL_RUN_MS
    emit = reporter("feedback_control")

    def scenario():
        # One campaign task per (family, strategy, seed) cell; the matrix
        # fans across cores with CHAOS_WORKERS and merges in task order.
        tasks = []
        for family in FAMILIES:
            for strategy in ("periodic", "feedback"):
                for seed, fault_ms in cases:
                    tasks.append(CampaignTask(
                        task_id=f"fc/{family}/{strategy}/seed-{seed}",
                        runner="bench_feedback_control:run_cell",
                        options={
                            "family": family,
                            "strategy": strategy,
                            "seed": seed,
                            "fault_ms": fault_ms,
                            "run_ms": run_ms,
                            "write_report": (
                                (family, strategy)
                                == ("leader_kill", "feedback")
                                and seed == cases[0][0]
                            ),
                        },
                    ))
        campaign = run_campaign(tasks, workers=resolve_workers(default=1))
        assert campaign.ok, [f.to_dict() for f in campaign.failures]

        by_cell = {}
        report_paths = None
        for task, record in zip(tasks, campaign.results):
            cell = (task.options["family"], task.options["strategy"])
            by_cell.setdefault(cell, []).append(record.stats)
            if record.payload and record.payload.get("report_paths"):
                report_paths = record.payload["report_paths"]
        rows = {
            cell: {
                "mttd": _mean([r["mttd"] for r in runs]),
                "mttr": _mean([r["mttr"] for r in runs]),
                "exposure": _mean([r["exposure"] for r in runs]),
                "availability": _mean([r["availability"] for r in runs]),
                "rejuvenations": _mean([r["rejuvenations"] for r in runs]),
                "capped": sum(1 for r in runs if r["capped"]),
            }
            for cell, runs in by_cell.items()
        }
        return rows, report_paths

    rows, report_paths = once(benchmark, scenario)

    emit(f"FC: one fault per run at staggered onsets, "
         f"{len(cases)} seed(s) per cell, run {run_ms / 1000:.0f} s, "
         f"rotation period {PERIOD_MS / 1000:.0f} s "
         f"(full rotation {6 * PERIOD_MS / 1000:.0f} s)")
    table = []
    for family in FAMILIES:
        for strategy in ("periodic", "feedback"):
            cell = rows[(family, strategy)]
            capped = f" (capped x{cell['capped']})" if cell["capped"] else ""
            table.append([
                family, strategy,
                _fmt_ms(cell["mttd"]), _fmt_ms(cell["mttr"]),
                _fmt_ms(cell["exposure"]) + capped,
                f"{cell['availability']:.1%}",
                f"{cell['rejuvenations']:.1f}",
            ])
    print_table(
        "feedback-driven vs periodic proactive recovery",
        ["fault family", "strategy", "MTTD (s)", "MTTR (s)",
         "exposure (s)", "availability", "rejuvenations"],
        table,
        out=emit,
    )
    emit("shape check: the controller detects the faulted replica within "
         "seconds and spends its rejuvenation there; the blind rotation "
         "leaves the suspect image exposed until its slot (or run end), "
         "while burning a rejuvenation slot on every period. In the quiet "
         "family the controller falls back to the periodic cadence.")
    if report_paths:
        emit(f"scenario report: {', '.join(report_paths)}")

    # acceptance: lower exposure at equal-or-better availability on the
    # leader-kill and slow-node families (the paper's motivating attacks)
    for family in ("leader_kill", "slow_node"):
        periodic = rows[(family, "periodic")]
        feedback = rows[(family, "feedback")]
        assert feedback["exposure"] < periodic["exposure"], family
        assert feedback["availability"] >= periodic["availability"] - 0.01, family
        assert feedback["rejuvenations"] <= periodic["rejuvenations"], family
    # the fallback keeps rejuvenating when no evidence arrives
    assert rows[("quiet", "feedback")]["rejuvenations"] >= 1
