"""F9 — Scalability: latency vs replica count and offered load; Prime vs
PBFT ordering overhead in the fault-free case.

The paper argues Prime's bounded-delay machinery costs little when nothing
is under attack. The bench measures fault-free latency for n ∈ {4, 6, 8, 10}
replicas on a LAN (both protocols) and Spire's latency as the RTU polling
rate scales.
"""

from repro.analysis import print_table
from repro.core import SpireDeployment, SpireOptions
from repro.obs import LatencyTracker
from repro.crypto import FastCrypto
from repro.pbft import PbftConfig, PbftNode
from repro.prime import LoggingApp, PrimeNode, lan_prime_config, sign_client_update
from repro.simnet import LinkSpec, Network, Simulator
from repro.spines import lan_topology

from common import once, reporter

UPDATES = 150
GAP_MS = 20.0


def run_protocol(protocol, n):
    simulator = Simulator(seed=91)
    network = Network(simulator, LinkSpec(latency_ms=0.3, jitter_ms=0.1))
    crypto = FastCrypto(seed=f"f9/{protocol}/{n}")
    names = tuple(f"replica:{i}" for i in range(n))
    if protocol == "prime":
        config = lan_prime_config(names, f=1, k=(1 if n >= 6 else 0))
        nodes = [PrimeNode(name, simulator, network, config, crypto,
                           LoggingApp()) for name in names]
    else:
        config = PbftConfig(names, num_faults=1)
        nodes = [PbftNode(name, simulator, network, config, crypto,
                          LoggingApp()) for name in names]
    for node in nodes:
        node.start()
    simulator.run_for(100.0)
    recorder = LatencyTracker()
    done = {}
    for node in nodes:
        node.execution_listeners.append(
            lambda u, i, r: done.setdefault((u.client, u.client_seq),
                                            simulator.now)
        )
    for seq in range(1, UPDATES + 1):
        update = sign_client_update(crypto, "c", seq, ("op", seq))
        recorder.submitted(("c", seq), simulator.now)
        nodes[seq % n].submit(update)
        simulator.run_for(GAP_MS)
    simulator.run_for(2_000.0)
    for key, at in done.items():
        recorder.acknowledged(key, at)
    return recorder.stats()


def run_spire_rate(poll_interval_ms):
    deployment = SpireDeployment(
        SpireOptions(
            num_substations=5, poll_interval_ms=poll_interval_ms,
            prime_preset="lan", placement={"lan0": 6}, seed=91,
        ),
        topology=lan_topology(1),
    )
    deployment.start()
    deployment.run_for(8_000.0)
    return deployment.status_recorder.stats(since=500.0)


def test_fig9_scalability(benchmark):
    emit = reporter("fig9_scalability")

    def scenario():
        protocol_rows = []
        for n in (4, 6, 8, 10):
            prime = run_protocol("prime", n)
            pbft = run_protocol("pbft", n)
            protocol_rows.append(
                [n, prime.mean, prime.p99, pbft.mean, pbft.p99,
                 prime.mean / pbft.mean]
            )
        rate_rows = []
        for interval in (500.0, 200.0, 100.0, 50.0):
            stats = run_spire_rate(interval)
            offered = 5 * (1000.0 / interval)
            achieved = stats.count / 7.5
            rate_rows.append([f"{offered:.0f}", f"{achieved:.0f}",
                              stats.mean, stats.p99])
        return protocol_rows, rate_rows

    protocol_rows, rate_rows = once(benchmark, scenario)
    emit("F9a: fault-free ordering latency vs replica count (LAN, f=1)")
    print_table(
        "Prime vs PBFT, fault-free (ms)",
        ["n", "Prime mean", "Prime p99", "PBFT mean", "PBFT p99",
         "Prime/PBFT"],
        protocol_rows,
        out=emit,
    )
    emit("F9b: Spire latency vs offered polling load (LAN, 6 replicas)")
    print_table(
        "latency vs offered load",
        ["offered (upd/s)", "achieved (upd/s)", "mean (ms)", "p99 (ms)"],
        rate_rows,
        out=emit,
    )
    emit("shape check: Prime pays a constant aggregation overhead vs PBFT "
         "in the fault-free case (the price of bounded delay under attack) "
         "and latency stays flat as replica count and load grow.")
    # Prime costs more fault-free but stays the same order of magnitude
    for n, prime_mean, _, pbft_mean, _, ratio in protocol_rows:
        assert prime_mean < 60.0
        assert 0.5 < ratio < 12.0
    # latency does not blow up with n
    assert protocol_rows[-1][1] < protocol_rows[0][1] * 3
    # Spire keeps up with the offered load across rates
    for offered, achieved, mean, p99 in rate_rows:
        assert float(achieved) > float(offered) * 0.7
        assert mean < 60.0
