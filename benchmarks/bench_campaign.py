"""Campaign-runner scaling benchmark → ``BENCH_core.json`` ``campaign`` section.

Measures the :mod:`repro.parallel` multiprocess campaign runner on the
chaos sweep: the same task list is executed at increasing worker counts
and, per count, records scenarios/sec, the speedup vs serial, and the
per-scenario wall p50/p99. Every run's merged report fingerprint must be
identical — the scaling curve is only meaningful because the results
byte-match at any worker count.

The CI gate (``--smoke --check``) is **host-calibrated**: GitHub runners
and laptops differ in core count, so the required speedup at ``w``
workers is ``min(2.5, 0.625 * min(w, cpus))`` scaled by the tolerance —
on a 4+-core host that is the ISSUE's ≥2.5× at 4 workers; on a
single-core host it degrades to "parallel overhead stays bounded". The
gate additionally asserts serial-vs-parallel fingerprint equality within
the run, and pins the smoke fingerprint against the committed baseline
when the interpreter minor version matches (hash-seed-pinned workers
make the fingerprint a pure function of the task list per version).

Usage::

    python benchmarks/bench_campaign.py                  # smoke matrix + print
    python benchmarks/bench_campaign.py --full           # 200-scenario matrix
    python benchmarks/bench_campaign.py --record         # smoke matrix + write baseline
    python benchmarks/bench_campaign.py --smoke --check  # CI gate vs BENCH_core.json
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
from time import perf_counter

_HERE = os.path.dirname(os.path.abspath(__file__))
_ROOT = os.path.dirname(_HERE)
_SRC = os.path.join(_ROOT, "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.chaos import ChaosOptions  # noqa: E402
from repro.parallel import canonical_hash_seed, run_campaign, seed_tasks  # noqa: E402

DEFAULT_OUTPUT = os.path.join(_ROOT, "BENCH_core.json")
REPORT_PATH = os.path.join(_HERE, "results", "campaign_scaling.txt")

#: compact scenario shape for the smoke matrix (matches the tier-1 suites)
SMOKE_SHAPE = dict(warmup_ms=500.0, chaos_ms=1000.0, settle_ms=500.0)
SMOKE_SCENARIOS = 24
SMOKE_WORKERS = (1, 2, 4)
#: the full matrix: the real 200-scenario sweep shape at 1/2/4/8 workers
FULL_SCENARIOS = 200
FULL_WORKERS = (1, 2, 4, 8)

#: per-core speedup slope used for host calibration: a w-worker run on a
#: cpus-core host is required to reach 0.625 * min(w, cpus), capped at
#: the ISSUE's 2.5x target (hit at 4 workers on 4+ cores)
SPEEDUP_SLOPE = 0.625
SPEEDUP_CAP = 2.5


def required_speedup(workers: int, cpus: int) -> float:
    return min(SPEEDUP_CAP, SPEEDUP_SLOPE * min(workers, cpus))


def campaign_tasks(smoke: bool):
    if smoke:
        return seed_tasks(
            "chaos", ChaosOptions(**SMOKE_SHAPE), range(SMOKE_SCENARIOS)
        )
    return seed_tasks("chaos", ChaosOptions(), range(FULL_SCENARIOS))


def run_matrix(smoke: bool, worker_counts, emit=print) -> dict:
    """Execute the task list once per worker count; returns the section."""
    tasks = campaign_tasks(smoke)
    rows = {}
    fingerprints = set()
    serial_rate = None
    for workers in worker_counts:
        started = perf_counter()
        report = run_campaign(tasks, workers=workers)
        wall = perf_counter() - started
        if not report.ok:
            raise RuntimeError(
                f"campaign violations/failures at workers={workers}: "
                f"{report.violation_counts} "
                f"{[f.to_dict() for f in report.failures]}"
            )
        rate = round(len(tasks) / wall, 3)
        if serial_rate is None:
            serial_rate = rate
        percentiles = report.wall_percentiles_ms()
        rows[str(workers)] = {
            "wall_s": round(wall, 3),
            "scenarios_per_sec": rate,
            "speedup": round(rate / serial_rate, 3),
            "per_scenario_wall_ms": percentiles,
        }
        fingerprints.add(report.fingerprint)
        emit(f"  workers={workers}: {wall:6.1f}s wall, {rate:6.2f} scen/s, "
             f"speedup x{rate / serial_rate:.2f}, per-scenario "
             f"p50 {percentiles['p50']:.0f} ms / p99 {percentiles['p99']:.0f} ms")
    if len(fingerprints) != 1:
        raise RuntimeError(
            f"merged report fingerprints diverged across worker counts: "
            f"{sorted(fingerprints)}"
        )
    return {
        "mode": "smoke" if smoke else "full",
        "scenarios": len(tasks),
        "cpus": os.cpu_count() or 1,
        "python": platform.python_version(),
        "hash_seed": canonical_hash_seed(),
        "fingerprint": next(iter(fingerprints)),
        "workers": rows,
    }


def write_report(section: dict, path: str = REPORT_PATH, emit=print) -> None:
    lines = [
        "Campaign runner scaling (benchmarks/bench_campaign.py)",
        f"({section['scenarios']} chaos scenarios [{section['mode']} shape], "
        f"{section['cpus']} cpu(s), python {section['python']}, "
        f"workers pinned to PYTHONHASHSEED={section['hash_seed']})",
        "",
        f"{'workers':>8} {'wall s':>8} {'scen/s':>8} {'speedup':>8} "
        f"{'p50 ms':>8} {'p99 ms':>8}",
    ]
    for workers, row in section["workers"].items():
        pct = row["per_scenario_wall_ms"]
        lines.append(
            f"{workers:>8} {row['wall_s']:>8.1f} "
            f"{row['scenarios_per_sec']:>8.2f} {row['speedup']:>8.2f} "
            f"{pct['p50']:>8.0f} {pct['p99']:>8.0f}"
        )
    lines += [
        "",
        "Every row executed the identical task list; the merged report",
        f"fingerprint ({section['fingerprint'][:16]}…) matched at every",
        "worker count, so the speedup column is the only thing that moves.",
        "",
    ]
    os.makedirs(os.path.dirname(path), exist_ok=True)
    with open(path, "w") as handle:
        handle.write("\n".join(lines))
    emit(f"report -> {path}")


# ----------------------------------------------------------------------
# Baseline record / CI gate
# ----------------------------------------------------------------------
def _load(path: str) -> dict:
    if os.path.exists(path):
        with open(path) as handle:
            return json.load(handle)
    return {}


def record(section: dict, path: str, emit=print) -> None:
    data = _load(path)
    data["campaign"] = section
    data.setdefault("meta", {})["python"] = platform.python_version()
    data["meta"]["machine"] = platform.machine()
    with open(path, "w") as handle:
        json.dump(data, handle, indent=2, sort_keys=True)
        handle.write("\n")
    emit(f"recorded campaign baseline -> {path}")


def check(section: dict, path: str, tolerance: float, emit=print) -> bool:
    baseline = _load(path).get("campaign")
    if baseline is None:
        emit(f"ERROR: no committed campaign baseline in {path}")
        return False
    ok = True
    cpus = section["cpus"]
    for workers, row in section["workers"].items():
        w = int(workers)
        if w == 1:
            continue
        required = required_speedup(w, cpus) * (1.0 - tolerance)
        emit(f"  workers={w}: speedup x{row['speedup']:.2f} vs required "
             f"x{required:.2f} (host-calibrated: {cpus} cpu(s))")
        if row["speedup"] < required:
            emit(f"  FAIL: campaign speedup at {w} workers below the "
                 f"calibrated floor")
            ok = False
    # serial-vs-parallel equality is checked inside run_matrix (a single
    # fingerprint across all worker counts); against the committed
    # baseline the fingerprint is comparable only on the same interpreter
    # minor version (dict-order-sensitive hashing differs across minors)
    same_minor = (
        platform.python_version_tuple()[:2]
        == tuple(baseline.get("python", "0.0").split(".")[:2])
    )
    comparable = (
        same_minor
        and section["mode"] == baseline.get("mode")
        and section["hash_seed"] == baseline.get("hash_seed")
    )
    if comparable:
        if section["fingerprint"] != baseline["fingerprint"]:
            emit(f"  FAIL: merged campaign fingerprint "
                 f"{section['fingerprint'][:16]}… != committed "
                 f"{baseline['fingerprint'][:16]}… (determinism or behavior "
                 f"change — re-record the campaign baseline if intended)")
            ok = False
        else:
            emit(f"  determinism: merged fingerprint matches the committed "
                 f"baseline ({section['fingerprint'][:16]}…)")
    else:
        emit(f"  (fingerprint-vs-baseline skipped: baseline python "
             f"{baseline.get('python')}/{baseline.get('mode')} vs this run "
             f"{section['python']}/{section['mode']})")
    emit("campaign check: " + ("OK" if ok else "REGRESSION DETECTED"))
    return ok


# ----------------------------------------------------------------------
def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="compact scenario shape at workers 1/2/4 (CI)")
    parser.add_argument("--full", action="store_true",
                        help="the 200-scenario sweep at workers 1/2/4/8")
    parser.add_argument("--record", action="store_true",
                        help="write the baseline + committed report")
    parser.add_argument("--check", action="store_true",
                        help="gate against the committed baseline")
    parser.add_argument("--tolerance", type=float, default=0.25)
    parser.add_argument("--json", default=DEFAULT_OUTPUT)
    parser.add_argument("--out", help="write this run's merged section to "
                                      "PATH (CI artifact)")
    args = parser.parse_args(argv)

    smoke = not args.full
    worker_counts = SMOKE_WORKERS if smoke else FULL_WORKERS
    emit = print
    emit(f"bench_campaign: {'smoke' if smoke else 'full'} matrix, "
         f"workers {worker_counts}, {os.cpu_count() or 1} cpu(s)")
    section = run_matrix(smoke, worker_counts, emit=emit)

    if args.out:
        with open(args.out, "w") as handle:
            json.dump(section, handle, indent=2, sort_keys=True)
            handle.write("\n")
    if args.record:
        record(section, args.json, emit=emit)
        write_report(section, emit=emit)
    if args.check:
        if not check(section, args.json, args.tolerance, emit=emit):
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
