"""T4 — Continuous wide-area operation (the paper's 30-hour test, scaled).

The paper ran Spire for ~30 hours across real East-coast sites, processing
over a million updates with an average latency around 43 ms and the
overwhelming majority under 100 ms, with proactive recovery running the
whole time. Virtual time lets us replay a scaled version — two minutes of
continuous operation with proactive recovery enabled — and report the same
distribution table. Absolute counts scale with duration; the shape (tight
distribution, tail bounded by recovery/view-change windows) is the target.
"""

from repro.analysis import print_table
from repro.core import SpireDeployment, SpireOptions

from common import once, reporter

RUN_MS = 120_000.0  # 2 virtual minutes standing in for 30 hours


def run_long():
    deployment = SpireDeployment(SpireOptions(
        num_substations=5,
        poll_interval_ms=200.0,
        seed=77,
        proactive_recovery=(20_000.0, 600.0),  # rejuvenate continuously
    ))
    deployment.start()
    deployment.run_for(RUN_MS)
    return deployment


def test_table4_long_run(benchmark):
    emit = reporter("table4_long_run")
    deployment = once(benchmark, run_long)
    stats = deployment.status_recorder.stats(since=2_000.0)
    emit(f"T4: continuous operation, {RUN_MS / 1000:.0f} virtual seconds, "
         "proactive recovery every 20 s")
    print_table(
        "long-run latency distribution (ms)",
        ["updates", "mean", "median", "p90", "p99", "p99.9", "max"],
        [[stats.count, stats.mean, stats.median, stats.p90, stats.p99,
          stats.p999, stats.maximum]],
        out=emit,
    )
    under_100 = sum(
        1 for at, latency in deployment.status_recorder.samples
        if at >= 2_000.0 and latency < 100.0
    ) / max(1, stats.count)
    availability = deployment.delivery_series.availability(
        2_000.0, RUN_MS - 1_000.0
    )
    recoveries = deployment.recovery_scheduler.recoveries_completed
    emit(f"fraction under 100 ms: {under_100:.4%}   "
         f"availability (1 s grain): {availability:.4%}   "
         f"rejuvenations completed: {recoveries}")
    emit("paper reference: avg ≈ 43 ms, vast majority < 100 ms over ~1.08 M "
         "updates / 30 h (absolute numbers are testbed-specific; shape holds)")
    assert stats.count > 2_000
    assert stats.mean < 100.0
    assert under_100 > 0.90
    assert availability > 0.90
    assert recoveries >= 4
    # every submitted update eventually delivered (no silent loss)
    submissions = deployment.proxy.submissions
    assert submissions.acked_total >= submissions.submitted_total - 10
