"""Frozen seed-state reference implementations of the hot paths.

This module is a verbatim-behavior copy of ``repro.simnet.engine`` and the
``repro.crypto`` fast path **as they stood before the hot-path overhaul**
(PR 5). It exists for two reasons:

1. **Executable spec.** The determinism property tests
   (``tests/test_perf_determinism.py``) replay identical workloads through
   the seed engine and the live engine and assert event-for-event identical
   firing order — including same-``(time, priority)`` ties — so the
   ``__slots__`` event, heap compaction and periodic-timer re-arming can
   never silently reorder a simulation.

2. **Host-speed calibration.** Raw events/sec numbers are meaningless
   across machines, so the CI perf gate (``perf_core.py --check``) measures
   the *ratio* of the live implementation to this frozen one on the same
   host in the same process, and compares that ratio against the one
   committed in ``BENCH_core.json``. A >25% drop in the ratio is a real
   code regression, not a slower runner.

Do not "fix" or optimize this file; it is intentionally the old code.
"""

from __future__ import annotations

import hashlib
import heapq
import itertools
import random
import struct
import dataclasses
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

__all__ = ["SeedSimulator", "SeedTimer", "SeedFastCrypto", "seed_encode", "seed_digest"]


# ----------------------------------------------------------------------
# Seed event loop (dataclass-ordered events, fresh closure per tick)
# ----------------------------------------------------------------------
@dataclass(order=True)
class _SeedEvent:
    time: float
    priority: int
    seq: int
    action: Callable[..., None] = field(compare=False)
    args: tuple = field(compare=False, default=())
    cancelled: bool = field(compare=False, default=False)


class SeedTimer:
    def __init__(self, event: _SeedEvent, simulator: "SeedSimulator") -> None:
        self._event = event
        self._simulator = simulator

    @property
    def fire_at(self) -> float:
        return self._event.time

    @property
    def active(self) -> bool:
        return not self._event.cancelled and self._event.time >= self._simulator.now

    def cancel(self) -> None:
        self._event.cancelled = True


class SeedSimulator:
    """The seed-state engine: ``@dataclass(order=True)`` events, no heap
    compaction, and a fresh closure + heap entry per periodic tick."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self.now: float = 0.0
        self._queue: list[_SeedEvent] = []
        self._seq = itertools.count()
        self._rngs: dict[str, random.Random] = {}
        self._events_processed = 0
        self._stopped = False

    def rng(self, name: str) -> random.Random:
        if name not in self._rngs:
            self._rngs[name] = random.Random(f"{self.seed}/{name}")
        return self._rngs[name]

    def schedule(self, delay: float, action: Callable[..., None], *args: Any,
                 priority: int = 0) -> SeedTimer:
        if delay < 0:
            raise ValueError(f"cannot schedule in the past (delay={delay})")
        return self.schedule_at(self.now + delay, action, *args, priority=priority)

    def schedule_at(self, when: float, action: Callable[..., None], *args: Any,
                    priority: int = 0) -> SeedTimer:
        if when < self.now:
            raise ValueError(f"cannot schedule at {when} (now={self.now})")
        event = _SeedEvent(when, priority, next(self._seq), action, args)
        heapq.heappush(self._queue, event)
        return SeedTimer(event, self)

    def call_every(self, interval: float, action: Callable[..., None], *args: Any,
                   first_delay: Optional[float] = None, jitter: float = 0.0,
                   rng_name: str = "periodic") -> Callable[[], None]:
        if interval <= 0:
            raise ValueError("interval must be positive")
        stopped = {"value": False}
        rng = self.rng(rng_name)

        def fire() -> None:
            if stopped["value"]:
                return
            action(*args)
            if not stopped["value"]:
                self.schedule(interval + (rng.random() * jitter), fire)

        delay = first_delay if first_delay is not None else interval
        self.schedule(delay + (rng.random() * jitter), fire)

        def stop() -> None:
            stopped["value"] = True

        return stop

    @property
    def pending_events(self) -> int:
        return len(self._queue)

    @property
    def events_processed(self) -> int:
        return self._events_processed

    def stop(self) -> None:
        self._stopped = True

    def step(self) -> bool:
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self.now = event.time
            event.action(*event.args)
            self._events_processed += 1
            return True
        return False

    def run(self, max_events: Optional[int] = None) -> None:
        self._stopped = False
        count = 0
        while not self._stopped and self.step():
            count += 1
            if max_events is not None and count >= max_events:
                return

    def run_until(self, when: float) -> None:
        if when < self.now:
            raise ValueError(f"cannot run backwards to {when} (now={self.now})")
        self._stopped = False
        while not self._stopped and self._queue:
            head = self._queue[0]
            if head.cancelled:
                heapq.heappop(self._queue)
                continue
            if head.time > when:
                break
            self.step()
        if not self._stopped:
            self.now = when

    def run_for(self, duration: float) -> None:
        self.run_until(self.now + duration)


# ----------------------------------------------------------------------
# Seed crypto fast path (no caches: every call re-encodes and re-derives)
# ----------------------------------------------------------------------
def _seed_encode_into(value: Any, out: bytearray) -> None:
    if value is None:
        out += b"N"
    elif value is True:
        out += b"T"
    elif value is False:
        out += b"F"
    elif isinstance(value, int):
        data = str(value).encode()
        out += b"i" + len(data).to_bytes(4, "big") + data
    elif isinstance(value, float):
        out += b"f" + struct.pack(">d", value)
    elif isinstance(value, str):
        data = value.encode("utf-8")
        out += b"s" + len(data).to_bytes(4, "big") + data
    elif isinstance(value, bytes):
        out += b"b" + len(value).to_bytes(4, "big") + value
    elif isinstance(value, (tuple, list)):
        out += b"l" + len(value).to_bytes(4, "big")
        for item in value:
            _seed_encode_into(item, out)
    elif isinstance(value, frozenset):
        items = sorted(seed_encode(item) for item in value)
        out += b"S" + len(items).to_bytes(4, "big")
        for item in items:
            out += len(item).to_bytes(4, "big") + item
    elif isinstance(value, dict):
        items = sorted((seed_encode(k), v) for k, v in value.items())
        out += b"d" + len(items).to_bytes(4, "big")
        for key_bytes, item in items:
            out += len(key_bytes).to_bytes(4, "big") + key_bytes
            _seed_encode_into(item, out)
    elif dataclasses.is_dataclass(value) and not isinstance(value, type):
        cls = type(value)
        name = cls.__name__.encode()
        field_names = tuple(f.name for f in dataclasses.fields(value))
        out += b"D" + len(name).to_bytes(2, "big") + name
        out += len(field_names).to_bytes(4, "big")
        for field_name in field_names:
            _seed_encode_into(field_name, out)
            _seed_encode_into(getattr(value, field_name), out)
    else:
        raise TypeError(f"cannot canonically encode {type(value).__name__}")


def seed_encode(value: Any) -> bytes:
    out = bytearray()
    _seed_encode_into(value, out)
    return bytes(out)


def seed_digest(value: Any) -> str:
    return hashlib.sha256(seed_encode(value)).hexdigest()


@dataclass(frozen=True)
class SeedSignature:
    signer: str
    value: Any


class SeedFastCrypto:
    """Seed-state ``FastCrypto`` subset: secrets re-derived per call,
    messages re-encoded per call, no tag memoization."""

    def __init__(self, seed: str = "fast") -> None:
        self.seed = seed

    def _secret(self, *parts: str) -> bytes:
        return hashlib.sha256("/".join((self.seed,) + parts).encode()).digest()

    def sign(self, signer: str, message: Any) -> SeedSignature:
        tag = hashlib.sha256(
            self._secret("sig", signer) + seed_encode(message)
        ).hexdigest()
        return SeedSignature(signer, tag)

    def verify(self, signature: SeedSignature, message: Any) -> bool:
        return self.sign(signature.signer, message).value == signature.value

    def mac(self, src: str, dst: str, message: Any) -> bytes:
        lo, hi = sorted((src, dst))
        return hashlib.sha256(
            self._secret("mac", lo, hi) + seed_encode(message)
        ).digest()

    def check_mac(self, src: str, dst: str, message: Any, tag: bytes) -> bool:
        import hmac as hmac_module

        return hmac_module.compare_digest(self.mac(src, dst, message), tag)
