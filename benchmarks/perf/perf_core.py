"""Hot-path microbenchmarks for the simulation core → ``BENCH_core.json``.

Three measurements, matching the three hot paths the PR-5 overhaul
targets:

* **event throughput** — a pure ``repro.simnet`` engine workload (periodic
  timers + one-shot churn with cancellations over a deep heap), reported
  as events/sec;
* **crypto ops/sec** — the replication-layer signing pattern (sign once,
  verify three times, MAC + check, digest twice, all on the same frozen
  message object) over ``repro.crypto.FastCrypto``;
* **fig3-LAN end-to-end** — the LAN leg of the fig3 benchmark (6 replicas,
  5 RTUs @ 10 Hz, flooding overlay), reported as wall seconds and
  simulator events/sec, followed by the run's ``repro.obs`` wall-clock
  hot-spot table.

The first two are also run against ``seed_impl`` — a frozen copy of the
pre-overhaul code — because raw numbers do not transfer across machines
but the live/seed *ratio* on one host does. The CI regression gate
(``--check``) uses that ratio to normalize the committed baseline to the
current host before applying its tolerance.

Usage::

    python benchmarks/perf/perf_core.py                  # run + print
    python benchmarks/perf/perf_core.py --record before  # write baseline
    python benchmarks/perf/perf_core.py --record after   # write + speedups
    python benchmarks/perf/perf_core.py --smoke --check  # CI gate vs BENCH_core.json
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
from dataclasses import dataclass
from time import perf_counter

_HERE = os.path.dirname(os.path.abspath(__file__))
_ROOT = os.path.dirname(os.path.dirname(_HERE))
for path in (os.path.join(_ROOT, "src"), _HERE):
    if path not in sys.path:
        sys.path.insert(0, path)

from seed_impl import SeedFastCrypto, SeedSimulator, seed_digest  # noqa: E402

from repro.analysis import print_hotspots  # noqa: E402
from repro.core import SpireDeployment, SpireOptions  # noqa: E402
from repro.core.collector import DeliveryCollector  # noqa: E402
from repro.core.update import (  # noqa: E402
    BatchDeliveryShare,
    DeliveryShare,
    batch_record_for,
    record_for,
)
from repro.crypto import FastCrypto, RealCrypto  # noqa: E402
from repro.crypto.encoding import digest  # noqa: E402
from repro.prime.messages import ClientUpdate  # noqa: E402
from repro.simnet import Simulator  # noqa: E402
from repro.spines import lan_topology  # noqa: E402

DEFAULT_OUTPUT = os.path.join(_ROOT, "BENCH_core.json")
SWEEP_OUTPUT = os.path.join(_ROOT, "benchmarks", "results", "ordered_delivery_sweep.txt")

#: workload sizes: (event-throughput events, crypto messages, fig3 run ms,
#: ordered-delivery updates)
FULL_SIZES = (400_000, 5_000, 12_000.0, 512)
SMOKE_SIZES = (80_000, 1_200, 2_500.0, 128)

#: delivery batch sizes swept by the ordered-delivery bench
BATCH_SIZES = (1, 4, 16, 64)

#: repeat each measurement and keep the best (max throughput / min wall);
#: single samples on a shared host routinely swing ±20%
FULL_REPEATS = 3
SMOKE_REPEATS = 2


def _noop() -> None:
    pass


# ----------------------------------------------------------------------
# Event throughput
# ----------------------------------------------------------------------
def _throughput_workload(sim) -> None:
    """Identical workload for the live and seed engines.

    Mirrors what a deployment does to the queue: a band of periodic
    timers (replica/hello/RTU cadences), a steady stream of one-shot
    timers of which half get cancelled (retransmission timers that the
    ack beats), and a deep backlog of far-future events so every push
    performs realistic heap comparisons.
    """
    for i in range(24):
        sim.call_every(0.5 + 0.25 * (i % 8), _noop, rng_name=f"perf/p{i}")
    for i in range(2_000):
        sim.schedule(1e6 + i, _noop)
    live = []

    def churn() -> None:
        if len(live) >= 40:
            for timer in live[::2]:
                timer.cancel()
            del live[:]
        live.append(sim.schedule(15.0, _noop))
        live.append(sim.schedule(25.0, _noop))

    sim.call_every(1.0, churn, rng_name="perf/churn")


def bench_event_throughput(events: int, engine: str = "live", repeats: int = 1) -> float:
    """Events/sec executing ``events`` events of the churn workload
    (best of ``repeats`` fresh simulators)."""
    best = 0.0
    for _ in range(repeats):
        sim = Simulator(seed=1234) if engine == "live" else SeedSimulator(seed=1234)
        _throughput_workload(sim)
        started = perf_counter()
        sim.run(max_events=events)
        elapsed = perf_counter() - started
        best = max(best, events / elapsed)
    return best


# ----------------------------------------------------------------------
# Crypto ops
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class _PerfMessage:
    """Stand-in for a Prime protocol message (same shape/field count)."""

    kind: str
    sender: str
    seq: int
    view: int
    payload: tuple


def bench_crypto_ops(messages: int, provider_kind: str = "live", repeats: int = 1) -> float:
    """Crypto ops/sec over the replication-layer usage pattern
    (best of ``repeats``; fresh provider and message batch each pass)."""
    best = 0.0
    for _ in range(repeats):
        if provider_kind == "live":
            provider, digest_fn = FastCrypto(seed="perf"), digest
        else:
            provider, digest_fn = SeedFastCrypto(seed="perf"), seed_digest
        batch = [
            _PerfMessage("po-request", f"replica:{i % 6}", i, i % 3, ("op", i, float(i)))
            for i in range(messages)
        ]
        ops = 0
        started = perf_counter()
        for message in batch:
            signature = provider.sign("replica:1", message)
            for _ in range(3):
                provider.verify(signature, message)
            tag = provider.mac("replica:1", "replica:2", message)
            provider.check_mac("replica:1", "replica:2", message, tag)
            digest_fn(message)
            digest_fn(message)
            ops += 8
        elapsed = perf_counter() - started
        best = max(best, ops / elapsed)
    return best


# ----------------------------------------------------------------------
# fig3-LAN end to end
# ----------------------------------------------------------------------
def bench_fig3_lan(run_ms: float, hotspots_out=None, repeats: int = 1) -> dict:
    """Build + run the fig3 LAN leg; wall seconds and events/sec.

    The deployment (identical every pass — same seed, same virtual
    trace) is run ``repeats`` times and the fastest pass is reported;
    the hot-spot table comes from that pass."""
    best = None
    best_obs = None
    for _ in range(repeats):
        started = perf_counter()
        options = SpireOptions.lan(
            num_substations=5, poll_interval_ms=100.0,
            placement={"lan0": 6}, overlay_mode="flooding", seed=31,
        )
        deployment = SpireDeployment(options, topology=lan_topology(1))
        deployment.start()
        build_s = perf_counter() - started
        run_started = perf_counter()
        deployment.run_for(run_ms)
        run_s = perf_counter() - run_started
        events = deployment.simulator.events_processed
        result = {
            "wall_s": round(build_s + run_s, 4),
            "run_wall_s": round(run_s, 4),
            "sim_ms": run_ms,
            "events": events,
            "events_per_sec": round(events / run_s, 1),
            "status_mean_ms": round(deployment.status_recorder.stats().mean, 4),
        }
        if best is None or result["wall_s"] < best["wall_s"]:
            best = result
            best_obs = deployment.obs
    if hotspots_out is not None:
        print_hotspots(best_obs, out=hotspots_out)
    return best


# ----------------------------------------------------------------------
# Ordered-delivery throughput (batch-amortized threshold crypto)
# ----------------------------------------------------------------------
def bench_ordered_delivery(
    updates: int, batch_sizes=BATCH_SIZES, repeats: int = 1
) -> dict:
    """Ordered-updates/sec through the real delivery pipeline, swept over
    delivery batch sizes.

    Exercises the code endpoints actually run — ``record_for`` /
    ``batch_record_for`` on the replica side (``threshold`` share
    signatures per unit of signing) and ``DeliveryCollector.add`` /
    ``add_batch`` on the endpoint side (robust combine + verify, Merkle
    proof checks) — over ``RealCrypto``, where RSA share signing and
    combining dominate exactly as in a production deployment. Batch size
    1 is the per-update baseline; larger sizes amortize one threshold
    signature across the whole batch, leaving only hash-cost Merkle
    proofs per update.
    """
    group = "perf-masters"
    players, threshold = 6, 2  # the paper's f=1, k=1 fleet: f+1 shares
    sweep = {}
    # The B=1 leg is short (~0.3s smoke) and RSA-heavy, so one transient
    # load spike skews the amortization ratio's denominator; best-of-3 at
    # minimum keeps the recorded baseline and the gated run comparable.
    repeats = max(repeats, 3)
    for batch_size in batch_sizes:
        best = 0.0
        for _ in range(repeats):
            crypto = RealCrypto(seed="perf-ordered")
            crypto.create_threshold_group(group, players, threshold)
            collector = DeliveryCollector(crypto, group)
            pending = [
                ClientUpdate("proxy:field", i + 1, ("reading", i, float(i)))
                for i in range(updates)
            ]
            delivered = 0
            started = perf_counter()
            if batch_size == 1:
                for i, update in enumerate(pending):
                    record = record_for(update, i + 1)
                    for index in range(1, threshold + 1):
                        share = crypto.threshold_sign_share(group, index, record)
                        if collector.add(
                            DeliveryShare(f"replica:{index}", record, share)
                        ):
                            delivered += 1
                elapsed = perf_counter() - started
            else:
                for po_seq, base in enumerate(range(0, updates, batch_size), 1):
                    chunk = pending[base:base + batch_size]
                    executed = [
                        (update, base + j + 1, None)
                        for j, update in enumerate(chunk)
                    ]
                    batch, entries = batch_record_for("origin#0", po_seq, executed)
                    for index in range(1, threshold + 1):
                        share = crypto.threshold_sign_share(group, index, batch)
                        delivered += len(
                            collector.add_batch(
                                BatchDeliveryShare(
                                    f"replica:{index}", batch, share, entries
                                )
                            )
                        )
                elapsed = perf_counter() - started
            if delivered != updates:
                raise RuntimeError(
                    f"batch={batch_size}: delivered {delivered} of {updates}"
                )
            best = max(best, updates / elapsed)
        sweep[str(batch_size)] = round(best, 1)
    baseline = sweep[str(batch_sizes[0])]
    saturation = max(batch_sizes, key=lambda b: sweep[str(b)])
    return {
        "updates": updates,
        "updates_per_sec": sweep,
        "saturation_batch": saturation,
        "speedup_at_saturation": round(sweep[str(saturation)] / baseline, 3),
    }


# ----------------------------------------------------------------------
# Driver
# ----------------------------------------------------------------------
def measure(smoke: bool, emit=print) -> dict:
    events, messages, run_ms, ordered = SMOKE_SIZES if smoke else FULL_SIZES
    repeats = SMOKE_REPEATS if smoke else FULL_REPEATS
    emit(f"perf_core: {'smoke' if smoke else 'full'} sizes "
         f"(events={events}, crypto_msgs={messages}, fig3_ms={run_ms:g}, "
         f"ordered_updates={ordered}, best of {repeats})")
    results = {}
    results["event_throughput"] = round(
        bench_event_throughput(events, "live", repeats), 1
    )
    emit(f"  event throughput (live) : {results['event_throughput']:>12,.0f} events/s")
    results["seed_event_throughput"] = round(
        bench_event_throughput(events, "seed", repeats), 1
    )
    emit(f"  event throughput (seed) : {results['seed_event_throughput']:>12,.0f} events/s")
    results["crypto_ops"] = round(bench_crypto_ops(messages, "live", repeats), 1)
    emit(f"  crypto ops (live)       : {results['crypto_ops']:>12,.0f} ops/s")
    results["seed_crypto_ops"] = round(bench_crypto_ops(messages, "seed", repeats), 1)
    emit(f"  crypto ops (seed)       : {results['seed_crypto_ops']:>12,.0f} ops/s")
    results["fig3_lan"] = bench_fig3_lan(run_ms, hotspots_out=emit, repeats=repeats)
    emit(f"  fig3-LAN e2e            : {results['fig3_lan']['wall_s']:.2f} s wall "
         f"({results['fig3_lan']['events_per_sec']:,.0f} sim events/s)")
    results["ordered_delivery"] = bench_ordered_delivery(ordered, repeats=repeats)
    for size in BATCH_SIZES:
        rate = results["ordered_delivery"]["updates_per_sec"][str(size)]
        emit(f"  ordered delivery B={size:<3}  : {rate:>12,.0f} updates/s")
    emit(f"  batch amortization      : ×"
         f"{results['ordered_delivery']['speedup_at_saturation']} at "
         f"B={results['ordered_delivery']['saturation_batch']}")
    results["vs_seed"] = {
        "event_throughput": round(
            results["event_throughput"] / results["seed_event_throughput"], 3
        ),
        "crypto_ops": round(results["crypto_ops"] / results["seed_crypto_ops"], 3),
    }
    emit(f"  live/seed ratios        : events ×{results['vs_seed']['event_throughput']}"
         f", crypto ×{results['vs_seed']['crypto_ops']}")
    return results


def _load(path: str) -> dict:
    if os.path.exists(path):
        with open(path) as handle:
            return json.load(handle)
    return {}


def record(results: dict, phase: str, smoke: bool, path: str, emit=print) -> None:
    data = _load(path)
    data.setdefault("meta", {})["python"] = platform.python_version()
    data["meta"]["machine"] = platform.machine()
    mode = "smoke" if smoke else "full"
    section = data.setdefault(mode, {})
    section[phase] = results
    before, after = section.get("before"), section.get("after")
    if before and after:
        section["speedup"] = {
            "event_throughput": round(
                after["event_throughput"] / before["event_throughput"], 3
            ),
            "crypto_ops": round(after["crypto_ops"] / before["crypto_ops"], 3),
            "fig3_lan_wall": round(
                before["fig3_lan"]["wall_s"] / after["fig3_lan"]["wall_s"], 3
            ),
        }
        emit(f"  speedup ({mode})        : {section['speedup']}")
    with open(path, "w") as handle:
        json.dump(data, handle, indent=2, sort_keys=True)
        handle.write("\n")
    emit(f"recorded {mode}/{phase} -> {path}")


def check(results: dict, smoke: bool, path: str, tolerance: float, emit=print) -> bool:
    """Regression gate: compare against the committed baseline.

    The committed numbers come from a different machine, so the baseline
    is first rescaled by the seed-implementation ratio (same frozen code
    then and now → any ratio shift is the host, not the repo). After
    normalization, event throughput may not drop, nor fig3 wall time
    rise, by more than ``tolerance``.
    """
    data = _load(path)
    mode = "smoke" if smoke else "full"
    baseline = data.get(mode, {}).get("after")
    if baseline is None:
        emit(f"ERROR: no committed {mode}/after baseline in {path}")
        return False
    host_scale = results["seed_event_throughput"] / baseline["seed_event_throughput"]
    emit(f"  host speed vs baseline host: ×{host_scale:.3f} (seed-impl calibration)")
    ok = True
    expected_events = baseline["event_throughput"] * host_scale
    floor = expected_events * (1.0 - tolerance)
    emit(f"  event throughput: {results['event_throughput']:,.0f} vs "
         f"normalized baseline {expected_events:,.0f} (floor {floor:,.0f})")
    if results["event_throughput"] < floor:
        emit("  FAIL: event throughput regressed beyond tolerance")
        ok = False
    expected_wall = baseline["fig3_lan"]["wall_s"] / host_scale
    ceiling = expected_wall * (1.0 + tolerance)
    emit(f"  fig3-LAN wall: {results['fig3_lan']['wall_s']:.2f}s vs "
         f"normalized baseline {expected_wall:.2f}s (ceiling {ceiling:.2f}s)")
    if results["fig3_lan"]["wall_s"] > ceiling:
        emit("  FAIL: fig3-LAN wall time regressed beyond tolerance")
        ok = False
    base_ordered = baseline.get("ordered_delivery")
    if base_ordered is not None and "ordered_delivery" in results:
        ordered = results["ordered_delivery"]
        # The amortization *ratio* is host-independent (same RSA cost in
        # numerator and denominator), so it gates unscaled; the batched
        # absolute throughput gates against the host-normalized baseline.
        batch = str(base_ordered["saturation_batch"])
        expected_rate = base_ordered["updates_per_sec"][batch] * host_scale
        rate_floor = expected_rate * (1.0 - tolerance)
        got_rate = ordered["updates_per_sec"].get(batch, 0.0)
        emit(f"  ordered delivery (B={batch}): {got_rate:,.0f} updates/s vs "
             f"normalized baseline {expected_rate:,.0f} (floor {rate_floor:,.0f})")
        if got_rate < rate_floor:
            emit("  FAIL: batched ordered throughput regressed beyond tolerance")
            ok = False
        speedup_floor = base_ordered["speedup_at_saturation"] * (1.0 - tolerance)
        emit(f"  batch amortization: ×{ordered['speedup_at_saturation']} vs "
             f"baseline ×{base_ordered['speedup_at_saturation']} "
             f"(floor ×{speedup_floor:.2f})")
        if ordered["speedup_at_saturation"] < speedup_floor:
            emit("  FAIL: batch amortization ratio regressed beyond tolerance")
            ok = False
    emit("perf check: " + ("OK" if ok else "REGRESSION DETECTED"))
    return ok


def write_sweep(results: dict, smoke: bool, path: str = SWEEP_OUTPUT, emit=print) -> None:
    """Record the batch-size sweep as a committed results artifact."""
    ordered = results.get("ordered_delivery")
    if ordered is None:
        return
    mode = "smoke" if smoke else "full"
    lines = [
        "Ordered-delivery throughput vs delivery batch size",
        f"(benchmarks/perf/perf_core.py --{'smoke ' if smoke else ''}mode="
        f"{mode}; RealCrypto, 6 replicas, threshold f+1=2, "
        f"{ordered['updates']} updates)",
        "",
        f"{'batch':>6}  {'updates/sec':>12}  {'vs B=1':>8}",
    ]
    baseline = ordered["updates_per_sec"][str(BATCH_SIZES[0])]
    for size in BATCH_SIZES:
        rate = ordered["updates_per_sec"][str(size)]
        lines.append(f"{size:>6}  {rate:>12,.0f}  {rate / baseline:>7.2f}x")
    lines += [
        "",
        f"saturation at B={ordered['saturation_batch']}: "
        f"x{ordered['speedup_at_saturation']} ordered-updates/sec over the "
        f"unbatched baseline (one threshold signature per batch + per-update "
        f"Merkle proofs).",
        "",
    ]
    with open(path, "w") as handle:
        handle.write("\n".join(lines))
    emit(f"sweep -> {path}")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="CI-sized workloads (~10s total)")
    parser.add_argument("--record", choices=("before", "after"),
                        help="write results into the JSON under this phase")
    parser.add_argument("--check", action="store_true",
                        help="compare against the committed baseline; "
                             "exit 1 on regression beyond --tolerance")
    parser.add_argument("--tolerance", type=float, default=0.25,
                        help="allowed fractional regression for --check")
    parser.add_argument("--json", default=DEFAULT_OUTPUT,
                        help=f"baseline JSON path (default {DEFAULT_OUTPUT})")
    parser.add_argument("--out",
                        help="also write this run's raw measurements to PATH "
                             "(CI artifact; the committed baseline is untouched)")
    parser.add_argument("--sweep-out",
                        help="write the ordered-delivery batch-size sweep to "
                             "PATH (with --record it also lands in "
                             "benchmarks/results/)")
    args = parser.parse_args(argv)

    results = measure(smoke=args.smoke)
    if args.out:
        with open(args.out, "w") as handle:
            json.dump({"smoke" if args.smoke else "full": results},
                      handle, indent=2, sort_keys=True)
            handle.write("\n")
    if args.sweep_out:
        write_sweep(results, args.smoke, path=args.sweep_out)
    if args.record:
        record(results, args.record, args.smoke, args.json)
        if not args.smoke:
            write_sweep(results, args.smoke)
    if args.check:
        if not check(results, args.smoke, args.json, args.tolerance):
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
