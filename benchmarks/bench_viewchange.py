"""View-change recovery benchmark → ``BENCH_core.json`` ``viewchange``.

Measures how fast leadership recovers from a leader kill: the latency
from the fault *firing* (against whoever leads at that instant) to a
**quorum** of replicas adopting a strictly higher view, as judged by the
:class:`~repro.chaos.monitors.ViewRecoveryMonitor`. Two protocols:

* **Prime** inside the full Spire deployment (``ChaosEngine`` with a
  pinned single ``leader_kill`` schedule; delivery batching alternates
  per seed);
* **PBFT** on the flat baseline cluster (``run_pbft_chaos`` with the
  same pinned schedule shape).

Each seeded run contributes one kill→adoption sample; the p50/p99 over
the seed sweep is the committed number. The run doubles as a gate: any
monitor violation (no quorum adoption in bound, ordering stalled,
safety/exactly-once breach) fails the benchmark.

Usage::

    python benchmarks/bench_viewchange.py                 # full sweep
    python benchmarks/bench_viewchange.py --smoke         # CI-sized sweep
    python benchmarks/bench_viewchange.py --record        # write baseline
    python benchmarks/bench_viewchange.py --smoke --out viewchange_smoke.json
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
from time import perf_counter

_HERE = os.path.dirname(os.path.abspath(__file__))
_ROOT = os.path.dirname(_HERE)
for _path in (os.path.join(_ROOT, "src"),):
    if _path not in sys.path:
        sys.path.insert(0, _path)

from repro.chaos import (  # noqa: E402
    ChaosEngine,
    ChaosOptions,
    FaultAction,
    FaultSchedule,
    PbftChaosOptions,
    run_pbft_chaos,
)

DEFAULT_OUTPUT = os.path.join(_ROOT, "BENCH_core.json")
REPORT_PATH = os.path.join(_HERE, "results", "viewchange.txt")

#: Prime scenario shape (compact deployment, same as the tier-1 smoke)
PRIME_SHAPE = dict(
    warmup_ms=800.0,
    chaos_ms=3000.0,
    settle_ms=2000.0,
    poll_interval_ms=250.0,
    proactive_recovery=(5000.0, 400.0),
    leader_faults=True,
)
#: one leader kill, resolved at fire time, long enough to force a view
PRIME_SCHEDULE = FaultSchedule((FaultAction("leader_kill", 1500.0, 2000.0),))
PBFT_SCHEDULE = FaultSchedule((FaultAction("leader_kill", 2000.0, 2500.0),))

FULL_SEEDS = 40
SMOKE_SEEDS = 12


def percentile(samples: list, p: float) -> float:
    ordered = sorted(samples)
    if not ordered:
        return float("nan")
    index = min(len(ordered) - 1, round(p / 100.0 * (len(ordered) - 1)))
    return ordered[int(index)]


def summarize(samples: list) -> dict:
    return {
        "samples": len(samples),
        "p50_ms": round(percentile(samples, 50), 3),
        "p99_ms": round(percentile(samples, 99), 3),
        "max_ms": round(max(samples), 3) if samples else None,
        "mean_ms": round(sum(samples) / len(samples), 3) if samples else None,
    }


def run_prime(seeds: int, emit) -> tuple[dict, list]:
    samples, failures = [], []
    for seed in range(seeds):
        options = ChaosOptions(seed=seed, batching=(seed % 2 == 1),
                               **PRIME_SHAPE)
        result = ChaosEngine(options, schedule=PRIME_SCHEDULE).run()
        samples.extend(result.stats["view_recovery_latencies_ms"])
        if result.violations:
            failures.append((seed, [str(v) for v in result.violations]))
    emit(f"  prime: {seeds} seeds, {len(samples)} kill->adoption samples, "
         f"{len(failures)} failing seeds")
    return summarize(samples), failures


def run_pbft(seeds: int, emit) -> tuple[dict, list]:
    samples, failures = [], []
    for seed in range(seeds):
        result = run_pbft_chaos(PbftChaosOptions(seed=seed),
                                schedule=PBFT_SCHEDULE)
        samples.extend(result.stats["view_recovery_latencies_ms"])
        if result.violations:
            failures.append((seed, [str(v) for v in result.violations]))
    emit(f"  pbft:  {seeds} seeds, {len(samples)} kill->adoption samples, "
         f"{len(failures)} failing seeds")
    return summarize(samples), failures


def write_report(section: dict, emit) -> None:
    lines = [
        "View-change recovery latency (benchmarks/bench_viewchange.py)",
        "(kill -> quorum new-view adoption, ViewRecoveryMonitor timeline;",
        " one pinned leader_kill per seeded run, PYTHONHASHSEED=0)",
        "",
        f"{'protocol':>9} {'samples':>8} {'p50 ms':>9} {'p99 ms':>9} "
        f"{'max ms':>9} {'mean ms':>9}",
    ]
    for protocol in ("prime", "pbft"):
        row = section[protocol]
        lines.append(
            f"{protocol:>9} {row['samples']:>8} {row['p50_ms']:>9.1f} "
            f"{row['p99_ms']:>9.1f} {row['max_ms']:>9.1f} "
            f"{row['mean_ms']:>9.1f}"
        )
    lines += [
        "",
        "Prime pays TAT suspicion + suspect amplification + one view-change",
        "round inside the full deployment; the PBFT baseline pays its",
        "request timeout + one view-change round on the flat cluster.",
        "",
    ]
    os.makedirs(os.path.dirname(REPORT_PATH), exist_ok=True)
    with open(REPORT_PATH, "w") as handle:
        handle.write("\n".join(lines))
    emit(f"report -> {REPORT_PATH}")


def record(section: dict, path: str, emit) -> None:
    data = {}
    if os.path.exists(path):
        with open(path) as handle:
            data = json.load(handle)
    data["viewchange"] = section
    data.setdefault("meta", {})["python"] = platform.python_version()
    data["meta"]["machine"] = platform.machine()
    with open(path, "w") as handle:
        json.dump(data, handle, indent=2, sort_keys=True)
        handle.write("\n")
    emit(f"recorded viewchange baseline -> {path}")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help=f"CI-sized sweep ({SMOKE_SEEDS} seeds/protocol)")
    parser.add_argument("--record", action="store_true",
                        help="merge results into BENCH_core.json")
    parser.add_argument("--json", default=DEFAULT_OUTPUT)
    parser.add_argument("--out", help="also write this run's raw JSON here")
    args = parser.parse_args(argv)

    def emit(line: str = "") -> None:
        print(line, flush=True)

    seeds = SMOKE_SEEDS if args.smoke else FULL_SEEDS
    started = perf_counter()
    emit(f"view-change recovery sweep ({seeds} seeds per protocol)...")
    prime, prime_failures = run_prime(seeds, emit)
    pbft, pbft_failures = run_pbft(seeds, emit)
    wall = perf_counter() - started

    section = {
        "mode": "smoke" if args.smoke else "full",
        "seeds_per_protocol": seeds,
        "prime": prime,
        "pbft": pbft,
        "wall_s": round(wall, 1),
    }
    write_report(section, emit)
    emit(f"prime p50/p99: {prime['p50_ms']}/{prime['p99_ms']} ms   "
         f"pbft p50/p99: {pbft['p50_ms']}/{pbft['p99_ms']} ms   "
         f"({wall:.0f}s wall)")

    if args.out:
        with open(args.out, "w") as handle:
            json.dump(section, handle, indent=2, sort_keys=True)
            handle.write("\n")
        emit(f"raw results -> {args.out}")
    if args.record:
        record(section, args.json, emit)

    failures = prime_failures + pbft_failures
    if failures:
        emit(f"FAIL: monitor violations in {len(failures)} run(s):")
        for seed, violations in failures:
            emit(f"  seed {seed}: {violations}")
        return 1
    if not prime["samples"] or not pbft["samples"]:
        emit("FAIL: sweep produced no recovery samples (vacuous run)")
        return 1
    emit("view-change recovery gate: OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
