"""Chaos sweep — randomized fault schedules vs. the invariant monitors.

Runs a large matrix of seeded chaos scenarios (default 200) against the
paper's baseline configuration — f=1, k=1, 6 replicas across the 4-site
wide-area topology — with every runtime invariant monitor armed: safety
(no divergent execution), proxy gate (no unverified delivery), quorum
availability (no rejuvenation below 2f+k+1) and the bounded-delay
watchdog. The expected result is **zero violations across the whole
sweep**; any violation is dumped as a replayable scenario file under
``benchmarks/results/`` and shrunk to a minimal reproducer.

This sweep is opt-in (``pytest benchmarks/bench_chaos_sweep.py --chaos``)
because it runs minutes of simulation; the tier-1 smoke version lives in
``tests/test_chaos_smoke.py``. Scale with ``CHAOS_SWEEP_COUNT``.
"""

import os
import time
from collections import Counter

import pytest

from repro.chaos import ChaosEngine, ChaosOptions, dump_scenario, shrink_schedule

from common import RESULTS_DIR, reporter

SWEEP_COUNT = int(os.environ.get("CHAOS_SWEEP_COUNT", "200"))


@pytest.mark.chaos
def test_chaos_sweep():
    emit = reporter("chaos_sweep")
    started = time.time()
    failures = []
    kind_coverage = Counter()
    totals = Counter()
    for seed in range(SWEEP_COUNT):
        result = ChaosEngine(ChaosOptions(seed=seed)).run()
        kind_coverage.update(action.kind for action in result.schedule)
        totals["actions"] += len(result.schedule)
        totals["executions_checked"] += result.stats["executions_checked"]
        totals["deliveries_verified"] += (
            result.stats["hmi_verified"] + result.stats["proxy_verified"]
        )
        totals["deferred_rejuvenations"] += result.stats["deferred_rejuvenations"]
        totals["quiet_checked_ms"] += result.stats["quiet_checked_ms"]
        if result.violations:
            path = dump_scenario(
                result, os.path.join(RESULTS_DIR, f"chaos_violation_{seed}.json")
            )
            shrunk = shrink_schedule(result.options, result.schedule)
            failures.append((seed, result.violations, path, len(shrunk.schedule)))
            emit(f"seed {seed}: {len(result.violations)} violation(s), "
                 f"scenario dumped to {path}, "
                 f"shrunk to {len(shrunk.schedule)} action(s)")
    wall = time.time() - started

    emit(f"chaos sweep: {SWEEP_COUNT} scenarios, f=1 k=1 (6 replicas, "
         f"4-site WAN), {wall:.0f}s wall")
    emit(f"fault actions applied: {totals['actions']}  "
         f"kind coverage: {dict(sorted(kind_coverage.items()))}")
    emit(f"executions cross-checked: {totals['executions_checked']}  "
         f"threshold-verified deliveries: {totals['deliveries_verified']}")
    emit(f"rejuvenations deferred for quorum: {totals['deferred_rejuvenations']}  "
         f"quiet time under delivery watchdog: "
         f"{totals['quiet_checked_ms'] / 1000.0:.1f}s")
    emit(f"invariant violations: {len(failures)} (expected 0)")
    assert not failures, f"violations in seeds {[f[0] for f in failures]}"
