"""Chaos sweep — randomized fault schedules vs. the invariant monitors.

Runs a large matrix of seeded chaos scenarios (default 200) against the
paper's baseline configuration — f=1, k=1, 6 replicas across the 4-site
wide-area topology — with every runtime invariant monitor armed: safety
(no divergent execution), proxy gate (no unverified delivery), quorum
availability (no rejuvenation below 2f+k+1) and the bounded-delay
watchdog. The expected result is **zero violations across the whole
sweep**; any violation is dumped as a replayable scenario file under
``benchmarks/results/`` and shrunk to a minimal reproducer.

The sweep executes through the shared :mod:`repro.parallel` campaign
runner: serial by default, fanned across cores with ``CHAOS_WORKERS=n``
(the merged report is identical at any worker count — see
``tests/test_parallel_campaign.py``).

This sweep is opt-in (``pytest benchmarks/bench_chaos_sweep.py --chaos``)
because it runs minutes of simulation; the tier-1 smoke version lives in
``tests/test_chaos_smoke.py``. Scale with ``CHAOS_SWEEP_COUNT``.
"""

import os
import time
from collections import Counter

import pytest

from repro.chaos import ChaosEngine, ChaosOptions, dump_scenario, shrink_schedule
from repro.parallel import resolve_workers, run_campaign, seed_tasks

from common import RESULTS_DIR, reporter

SWEEP_COUNT = int(os.environ.get("CHAOS_SWEEP_COUNT", "200"))


@pytest.mark.chaos
def test_chaos_sweep():
    emit = reporter("chaos_sweep")
    workers = resolve_workers(default=1)
    started = time.time()
    report = run_campaign(
        seed_tasks("chaos", ChaosOptions(), range(SWEEP_COUNT)),
        workers=workers,
    )
    wall = time.time() - started

    kind_coverage = Counter()
    totals = Counter()
    failures = []
    for record in report.records:
        if not record.ok:
            failures.append(record)
            continue
        stats = record.stats
        kind_coverage.update(stats["fault_kinds"])
        totals["executions_checked"] += stats["executions_checked"]
        totals["deliveries_verified"] += (
            stats["hmi_verified"] + stats["proxy_verified"]
        )
        totals["deferred_rejuvenations"] += stats["deferred_rejuvenations"]
        totals["quiet_checked_ms"] += stats["quiet_checked_ms"]

    # Violating seeds get a replayable dump + minimal reproducer. The
    # campaign record carries violations but not the live result, so the
    # (expected-never) failure path re-runs the scenario in-process.
    failed_seeds = []
    for record in failures:
        seed = getattr(record, "seed", None)
        if seed is None:
            seed = int(record.task_id.rsplit("-", 1)[1])
        failed_seeds.append(seed)
        result = ChaosEngine(ChaosOptions(seed=seed)).run()
        if result.violations:
            path = dump_scenario(
                result, os.path.join(RESULTS_DIR, f"chaos_violation_{seed}.json")
            )
            shrunk = shrink_schedule(result.options, result.schedule)
            emit(f"seed {seed}: {len(result.violations)} violation(s), "
                 f"scenario dumped to {path}, "
                 f"shrunk to {len(shrunk.schedule)} action(s)")
        else:
            emit(f"seed {seed}: campaign failure {record.to_dict()}")

    percentiles = report.wall_percentiles_ms()
    emit(f"chaos sweep: {SWEEP_COUNT} scenarios, f=1 k=1 (6 replicas, "
         f"4-site WAN), {wall:.0f}s wall at {workers} worker(s) "
         f"({SWEEP_COUNT / wall:.2f} scenarios/s, per-scenario "
         f"p50 {percentiles['p50']:.0f} ms / p99 {percentiles['p99']:.0f} ms)")
    emit(f"merged campaign fingerprint: {report.fingerprint}")
    emit(f"fault kind coverage (scenarios touched): "
         f"{dict(sorted(kind_coverage.items()))}")
    emit(f"executions cross-checked: {totals['executions_checked']}  "
         f"threshold-verified deliveries: {totals['deliveries_verified']}")
    emit(f"rejuvenations deferred for quorum: {totals['deferred_rejuvenations']}  "
         f"quiet time under delivery watchdog: "
         f"{totals['quiet_checked_ms'] / 1000.0:.1f}s")
    emit(f"invariant violations: {len(failures)} (expected 0)")
    assert not failures, f"violations in seeds {failed_seeds}"
