"""A1 — Ablation: threshold signatures vs f+1 individual signatures at
the proxy (a design choice DESIGN.md calls out).

Spire threshold-signs ordered updates so endpoints verify one compact
signature. The alternative is shipping f+1 individual replica signatures
with every delivery. The bench compares the verification work and wire
bytes per delivered update, plus end-to-end behaviour with real RSA
threshold crypto (correctness of the full path, not just the fast model).
"""

import time

from repro.analysis import print_table
from repro.core import DeliveryRecord
from repro.crypto import RealCrypto

from common import once, reporter

DELIVERIES = 40
GROUP = "ablation"
F = 1
N = 6

#: rough wire sizes: a 512-bit RSA signature is 64 bytes + framing
SIG_BYTES = 80
SHARE_BYTES = 80


def record(seq):
    return DeliveryRecord("status", "proxy:x", seq, seq, ("reading", seq))


def run_threshold(crypto):
    started = time.perf_counter()
    verified = 0
    for seq in range(1, DELIVERIES + 1):
        rec = record(seq)
        shares = [
            crypto.threshold_sign_share(GROUP, index, rec)
            for index in range(1, F + 2)
        ]
        combined = crypto.threshold_combine(GROUP, rec, shares)
        assert combined is not None
        assert crypto.threshold_verify(combined, rec)
        verified += 1
    elapsed = time.perf_counter() - started
    # endpoint receives f+1 shares; forwards/stores ONE combined signature
    wire = (F + 1) * SHARE_BYTES
    stored = SIG_BYTES
    return elapsed / DELIVERIES * 1000.0, wire, stored, verified


def run_individual(crypto):
    started = time.perf_counter()
    verified = 0
    for seq in range(1, DELIVERIES + 1):
        rec = record(seq)
        signatures = [
            crypto.sign(f"replica:{i}", rec) for i in range(F + 1)
        ]
        assert all(crypto.verify(sig, rec) for sig in signatures)
        verified += 1
    elapsed = time.perf_counter() - started
    # endpoint receives, verifies, and must retain/forward f+1 signatures
    wire = (F + 1) * SIG_BYTES
    stored = (F + 1) * SIG_BYTES
    return elapsed / DELIVERIES * 1000.0, wire, stored, verified


def test_ablation_threshold_vs_individual(benchmark):
    emit = reporter("ablation_threshold")
    crypto = RealCrypto(seed="ablation", bits=512)
    crypto.create_threshold_group(GROUP, N, F + 1)

    def scenario():
        return run_threshold(crypto), run_individual(crypto)

    threshold_result, individual_result = once(benchmark, scenario)
    rows = [
        ["threshold RSA (Spire)", *threshold_result],
        [f"{F + 1} individual RSA sigs", *individual_result],
    ]
    emit(f"A1: delivery authentication, real 512-bit RSA, {DELIVERIES} "
         "deliveries, f=1")
    print_table(
        "threshold signatures vs individual signatures",
        ["scheme", "cpu ms/delivery", "wire bytes", "bytes retained",
         "verified"],
        rows,
        out=emit,
    )
    emit("trade-off reproduced: threshold combining costs more CPU at the "
         "endpoint, but what is retained/forwarded (e.g. to auditors or "
         "downstream devices) is a single constant-size signature "
         "independent of f — the property Spire buys for its field devices.")
    assert threshold_result[3] == individual_result[3] == DELIVERIES
    assert threshold_result[2] < individual_result[2]  # constant-size proof
