"""F8 — Overlay resilience: intrusion-tolerant flooding vs shortest-path
routing under link attacks and a compromised daemon, plus the
self-healing control plane closing shortest-path routing's gap.

The paper's network-attack resilience rests on Spines' intrusion-tolerant
dissemination: as long as *any* correct path exists, messages arrive.
The bench sends a steady stream across the 10-site continental overlay
while an attacker (a) kills links on the primary path and (b) compromises
an interior daemon into a black hole, and compares delivery ratio and
latency across routing modes. A second comparison pits static
shortest-path routing against the self-healing overlay under the same
link kills: the static tables lose the rest of the stream, while the
link monitors detect the dead links and reroute within the configured
detection + reroute bound.

Pass ``--smoke`` to run a shortened stream (CI-sized).
"""

from repro.analysis import print_table
from repro.attacks import compromise_daemon_drop_all
from repro.crypto import FastCrypto
from repro.simnet import LinkSpec, Network, Process, Simulator
from repro.spines import OverlayStack, SpinesOverlay, continental_topology

from common import once, reporter

MESSAGES = 400
SMOKE_MESSAGES = 120
INTERVAL_MS = 20.0


class Receiver(Process):
    def __init__(self, name, simulator, network):
        super().__init__(name, simulator, network)
        self.received = {}
        self.arrivals = {}

    def on_message(self, src, payload):
        unwrapped = OverlayStack.unwrap(payload)
        if unwrapped is not None:
            origin, (kind, seq, sent_at) = unwrapped
            self.received[seq] = self.simulator.now - sent_at
            self.arrivals[seq] = self.simulator.now


def run_mode(mode, attack, self_healing=False, messages=MESSAGES):
    simulator = Simulator(seed=61)
    network = Network(simulator, LinkSpec(latency_ms=0.1))
    topology = continental_topology()
    overlay = SpinesOverlay(simulator, network, topology, mode=mode,
                            crypto=FastCrypto(), self_healing=self_healing)
    sender = Receiver("ep:sender", simulator, network)
    receiver = Receiver("ep:receiver", simulator, network)
    stack = overlay.attach(sender, "nyc")
    overlay.attach(receiver, "lax")
    kill_at = messages * INTERVAL_MS / 2.0  # strike mid-stream
    if attack == "links":
        # cut the first two segments of the actual latency-shortest path
        import networkx as nx

        path = nx.shortest_path(topology.graph, "nyc", "lax",
                                weight="latency_ms")
        cuts = list(zip(path, path[1:]))[:2]
        for a, b in cuts:
            simulator.schedule_at(
                kill_at,
                lambda a=a, b=b: network.block_link(f"spines:{a}", f"spines:{b}"),
            )
    elif attack == "daemon":
        simulator.schedule_at(
            kill_at, lambda: compromise_daemon_drop_all(overlay.daemon("den"))
        )

    seq_counter = {"value": 0}

    def send_one():
        seq_counter["value"] += 1
        stack.send("ep:receiver",
                   ("probe", seq_counter["value"], simulator.now),
                   size_bytes=256)

    stop = simulator.call_every(INTERVAL_MS, send_one, rng_name="probe")
    simulator.run_until(messages * INTERVAL_MS + 500.0)
    stop()
    simulator.run_for(1_000.0)
    sent = seq_counter["value"]
    delivered = len(receiver.received)
    latencies = sorted(receiver.received.values())
    mean = sum(latencies) / len(latencies) if latencies else float("nan")
    worst = latencies[-1] if latencies else float("nan")
    # first delivery of a message *sent* after the kill (in-flight
    # messages sent before it don't count as recovery)
    post_kill = sorted(
        at for seq, at in receiver.arrivals.items()
        if at - receiver.received[seq] >= kill_at
    )
    restore = post_kill[0] - kill_at if post_kill else float("nan")
    return sent, delivered, mean, worst, restore, overlay


def test_fig8_spines_resilience(benchmark, request):
    emit = reporter("fig8_spines_resilience")
    messages = (
        SMOKE_MESSAGES if request.config.getoption("--smoke") else MESSAGES
    )

    def scenario():
        rows = []
        for attack in ("none", "links", "daemon"):
            for mode in ("shortest", "flooding"):
                sent, delivered, mean, worst, _, _ = run_mode(
                    mode, attack, messages=messages
                )
                rows.append([attack, mode, sent, delivered,
                             f"{delivered / sent:.1%}", mean, worst])
        heal_rows = {}
        for self_healing in (False, True):
            sent, delivered, mean, worst, restore, overlay = run_mode(
                "shortest", "links", self_healing=self_healing,
                messages=messages,
            )
            heal_rows[self_healing] = [
                "self-healing" if self_healing else "static",
                sent, delivered, f"{delivered / sent:.1%}",
                restore, overlay.monitor_config.detection_bound_ms,
            ]
        return rows, heal_rows

    (rows, heal_rows) = once(benchmark, scenario)
    emit("F8: overlay delivery under attack, nyc -> lax over the "
         "10-daemon continental topology")
    print_table(
        "delivery vs routing mode",
        ["attack", "routing", "sent", "delivered", "ratio", "mean (ms)",
         "max (ms)"],
        rows,
        out=emit,
    )
    print_table(
        "shortest-path routing under link kills: static vs self-healing",
        ["overlay", "sent", "delivered", "ratio", "restore (ms)",
         "bound (ms)"],
        [heal_rows[False], heal_rows[True]],
        out=emit,
    )
    emit("shape check: flooding keeps ~100% delivery through link kills and "
         "a black-hole daemon; static shortest-path loses everything once "
         "its path dies, while the self-healing overlay detects the dead "
         "links and reroutes within the detection bound.")
    table = {
        (attack, mode): delivered / sent
        for attack, mode, sent, delivered, *_ in rows
    }
    assert table[("none", "shortest")] >= 0.99
    assert table[("none", "flooding")] >= 0.99
    assert table[("links", "flooding")] >= 0.95
    assert table[("daemon", "flooding")] >= 0.95
    # static shortest-path suffers under both attacks (its path is what we cut)
    assert table[("links", "shortest")] < 0.8
    assert table[("daemon", "shortest")] < 0.8
    # self-healing comparison: the static overlay never recovers; the
    # self-healing one loses only the detection + reroute window
    _, sent_s, delivered_s, _, _, _ = heal_rows[False]
    _, sent_h, delivered_h, _, restore, bound = heal_rows[True]
    assert delivered_s / sent_s < 0.8
    assert delivered_h / sent_h >= 1.0 - (bound + 200.0) / (
        messages * INTERVAL_MS
    )
    # first post-kill delivery: detection bound + one send interval + WAN path
    assert restore <= bound + INTERVAL_MS + 150.0
