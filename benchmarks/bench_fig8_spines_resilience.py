"""F8 — Overlay resilience: intrusion-tolerant flooding vs shortest-path
routing under link attacks and a compromised daemon.

The paper's network-attack resilience rests on Spines' intrusion-tolerant
dissemination: as long as *any* correct path exists, messages arrive.
The bench sends a steady stream across the 10-site continental overlay
while an attacker (a) kills links on the primary path and (b) compromises
an interior daemon into a black hole, and compares delivery ratio and
latency across routing modes.
"""

from repro.analysis import print_table
from repro.attacks import compromise_daemon_drop_all
from repro.crypto import FastCrypto
from repro.simnet import LinkSpec, Network, Process, Simulator
from repro.spines import OverlayStack, SpinesOverlay, continental_topology

from common import once, reporter

MESSAGES = 400
INTERVAL_MS = 20.0


class Receiver(Process):
    def __init__(self, name, simulator, network):
        super().__init__(name, simulator, network)
        self.received = {}

    def on_message(self, src, payload):
        unwrapped = OverlayStack.unwrap(payload)
        if unwrapped is not None:
            origin, (kind, seq, sent_at) = unwrapped
            self.received[seq] = self.simulator.now - sent_at


def run_mode(mode, attack):
    simulator = Simulator(seed=61)
    network = Network(simulator, LinkSpec(latency_ms=0.1))
    topology = continental_topology()
    overlay = SpinesOverlay(simulator, network, topology, mode=mode,
                            crypto=FastCrypto())
    sender = Receiver("ep:sender", simulator, network)
    receiver = Receiver("ep:receiver", simulator, network)
    stack = overlay.attach(sender, "nyc")
    overlay.attach(receiver, "lax")
    if attack == "links":
        # cut the first two segments of the actual latency-shortest path
        import networkx as nx

        path = nx.shortest_path(topology.graph, "nyc", "lax",
                                weight="latency_ms")
        cuts = list(zip(path, path[1:]))[:2]
        for a, b in cuts:
            simulator.schedule_at(
                2_000.0,
                lambda a=a, b=b: network.block_link(f"spines:{a}", f"spines:{b}"),
            )
    elif attack == "daemon":
        simulator.schedule_at(
            2_000.0, lambda: compromise_daemon_drop_all(overlay.daemon("den"))
        )

    seq_counter = {"value": 0}

    def send_one():
        seq_counter["value"] += 1
        stack.send("ep:receiver",
                   ("probe", seq_counter["value"], simulator.now),
                   size_bytes=256)

    stop = simulator.call_every(INTERVAL_MS, send_one, rng_name="probe")
    simulator.run_until(MESSAGES * INTERVAL_MS + 500.0)
    stop()
    simulator.run_for(1_000.0)
    sent = seq_counter["value"]
    delivered = len(receiver.received)
    latencies = sorted(receiver.received.values())
    mean = sum(latencies) / len(latencies) if latencies else float("nan")
    worst = latencies[-1] if latencies else float("nan")
    return sent, delivered, mean, worst


def test_fig8_spines_resilience(benchmark):
    emit = reporter("fig8_spines_resilience")

    def scenario():
        rows = []
        for attack in ("none", "links", "daemon"):
            for mode in ("shortest", "flooding"):
                sent, delivered, mean, worst = run_mode(mode, attack)
                rows.append([attack, mode, sent, delivered,
                             f"{delivered / sent:.1%}", mean, worst])
        return rows

    rows = once(benchmark, scenario)
    emit("F8: overlay delivery under attack, nyc -> lax over the "
         "10-daemon continental topology")
    print_table(
        "delivery vs routing mode",
        ["attack", "routing", "sent", "delivered", "ratio", "mean (ms)",
         "max (ms)"],
        rows,
        out=emit,
    )
    emit("shape check: flooding keeps ~100% delivery through link kills and "
         "a black-hole daemon; shortest-path loses everything once its "
         "(static) path dies.")
    table = {
        (attack, mode): delivered / sent
        for attack, mode, sent, delivered, *_ in rows
    }
    assert table[("none", "shortest")] >= 0.99
    assert table[("none", "flooding")] >= 0.99
    assert table[("links", "flooding")] >= 0.95
    assert table[("daemon", "flooding")] >= 0.95
    # shortest-path suffers under both attacks (its path is what we cut)
    assert table[("links", "shortest")] < 0.8
    assert table[("daemon", "shortest")] < 0.8
