"""Shared helpers for the benchmark harness.

Every benchmark regenerates one table or figure from the paper's
evaluation (see DESIGN.md §2 for the experiment index and EXPERIMENTS.md
for paper-vs-measured results). Because ``pytest`` captures stdout, each
benchmark writes its table both to the real stdout (so it appears in
``pytest benchmarks/ --benchmark-only`` output) and to
``benchmarks/results/<name>.txt`` for later inspection.
"""

from __future__ import annotations

import os
import sys
from typing import Callable, List, Sequence

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def reporter(name: str) -> Callable[[str], None]:
    """Returns a print-like function writing to real stdout + results file."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{name}.txt")
    handle = open(path, "w")

    def emit(line: str = "") -> None:
        print(line, file=sys.__stdout__, flush=True)
        print(line, file=handle, flush=True)

    return emit


def once(benchmark, fn):
    """Run a scenario exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, iterations=1, rounds=1)


def write_scenario_report(name, deployment, title=None, extra=None):
    """Dump the run's full observability report next to the table.

    Writes ``results/<name>_report.json`` and ``.txt`` from the
    deployment's ``obs`` handle; returns the two paths.
    """
    from repro.analysis import ScenarioReport

    os.makedirs(RESULTS_DIR, exist_ok=True)
    report = ScenarioReport.from_deployment(
        deployment, title=title or name, extra=extra
    )
    return report.write(os.path.join(RESULTS_DIR, f"{name}_report"))
